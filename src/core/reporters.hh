/**
 * @file
 * Table/figure formatting for the benchmark harnesses: fixed-width
 * column printing plus the RunResult aggregate helpers.
 */

#ifndef FUSION_CORE_REPORTERS_HH
#define FUSION_CORE_REPORTERS_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/results.hh"

namespace fusion::core
{

/** Simple fixed-width table writer. */
class TableWriter
{
  public:
    TableWriter(std::ostream &os, std::vector<std::string> headers,
                std::vector<int> widths);

    /** Print one row; cells are pre-formatted strings. */
    void row(const std::vector<std::string> &cells);

    /** Print a separator line. */
    void rule();

  private:
    std::ostream &_os;
    std::vector<int> _widths;
};

/** Format a double with @p decimals digits. */
std::string fmt(double v, int decimals = 2);

/** Format a ratio "x.xx x". */
std::string fmtRatio(double v);

/** Energy of the Figure 6a stack categories, in display order. */
struct EnergyStack
{
    double axcComputePj = 0;
    double localStorePj = 0; ///< L0X or scratchpad
    double l1xPj = 0;
    double llcPj = 0;
    double tileLinkPj = 0;   ///< L0X<->L1X + L0X<->L0X
    double hostLinkPj = 0;   ///< L1X/DMA <-> L2
    double dramPj = 0;
    double otherPj = 0;      ///< TLB/RMAP/host L1/etc.

    double total() const;
};

/** Split a result's ledger into the Figure 6a categories. */
EnergyStack energyStack(const RunResult &r);

/**
 * Print the per-histogram latency percentiles carried by telemetry
 * runs (RunResult::latency), one section per result that has any.
 * No-op — no output at all — when no result carries latency data,
 * so default harness output is unchanged.
 */
void printLatencyTable(std::ostream &os,
                       const std::vector<std::string> &tags,
                       const std::vector<RunResult> &results);

} // namespace fusion::core

#endif // FUSION_CORE_REPORTERS_HH
