#include "core/runner.hh"

#include "core/system.hh"
#include "sim/logging.hh"

namespace fusion::core
{

RunResult
runProgram(const SystemConfig &cfg, const trace::Program &prog)
{
    std::vector<std::string> errs = cfg.validate();
    if (!errs.empty()) {
        std::string joined;
        for (const auto &e : errs)
            joined += "\n  " + e;
        fusion_fatal("invalid SystemConfig:", joined);
    }
    System sys(cfg, prog);
    try {
        return sys.run();
    } catch (const guard::SimErrorException &ex) {
        // Fault isolation: surface the typed failure in the result
        // instead of crashing the caller.
        RunResult r;
        r.workload = prog.name;
        r.kind = cfg.kind;
        r.error = ex.error();
        r.faultsFired = sys.ctx().guard.faultsFired();
        r.faultFiredMask = sys.ctx().guard.firedFaultMask();
        return r;
    }
}

std::vector<RunResult>
runBaselineSystems(const trace::Program &prog)
{
    std::vector<RunResult> out;
    for (SystemKind k : {SystemKind::Scratch, SystemKind::Shared,
                         SystemKind::Fusion}) {
        out.push_back(
            runProgram(
                SystemConfig::preset(
                    SystemConfig::Preset::Paper, k),
                prog));
    }
    return out;
}

std::map<std::string, std::uint64_t>
hostProfile(const trace::Program &prog)
{
    // Replay every invocation on a host-only system; attribute
    // cycles per function.
    SystemConfig cfg = SystemConfig::preset(
        SystemConfig::Preset::Paper,
        SystemKind::Shared); // host side only is used
    SimContext ctx;
    vm::PageTable pt;
    for (const auto &inv : prog.invocations) {
        for (const auto &op : inv.ops) {
            if (op.kind != trace::OpKind::Compute)
                pt.ensureMapped(prog.pid, op.addr);
        }
    }
    mem::Dram dram(ctx, cfg.dram);
    host::Llc llc(ctx, cfg.llc, dram);
    interconnect::Link link(
        ctx, interconnect::LinkParams{
                 "hostl1_l2", energy::LinkClass::HostL1ToL2, 2,
                 energy::comp::kLinkHostL1L2,
                 energy::comp::kLinkHostL1L2});
    host::HostL1Params hp;
    hp.name = "host.l1";
    hp.capacityBytes = cfg.hostL1Bytes;
    hp.assoc = cfg.hostL1Assoc;
    host::HostL1 l1(ctx, hp, llc, &link);
    host::HostCore hc(ctx, cfg.hostCore, l1, pt);

    std::map<std::string, std::uint64_t> cycles;
    for (const auto &inv : prog.invocations) {
        const auto &meta =
            prog.functions[static_cast<std::size_t>(inv.func)];
        Tick t0 = ctx.now();
        bool done = false;
        hc.run(inv.ops, prog.pid, [&done] { done = true; });
        ctx.eq.run();
        fusion_assert(done, "host profile replay hung");
        cycles[meta.name] += ctx.now() - t0;
    }
    return cycles;
}

std::optional<trace::Program>
buildProgram(const std::string &workload, workloads::Scale scale)
{
    // The record/replay seam lives in the workloads layer: when the
    // global trace store is armed (bench --trace-dir), the build is
    // captured once per (name, scale) and replayed from disk after.
    return workloads::buildProgram(workload, scale);
}

std::string
unknownWorkloadMessage(const std::string &workload)
{
    std::string msg = "unknown workload '" + workload + "' (known:";
    for (const auto &n : workloads::workloadNames())
        msg += " " + n;
    msg += ")";
    return msg;
}

} // namespace fusion::core
