#include "core/reporters.hh"

#include <iomanip>
#include <sstream>

#include "energy/energy_ledger.hh"

namespace fusion::core
{

// RunResult's own methods (aggregates + toJson) live in results.cc.

TableWriter::TableWriter(std::ostream &os,
                         std::vector<std::string> headers,
                         std::vector<int> widths)
    : _os(os), _widths(std::move(widths))
{
    row(headers);
    rule();
}

void
TableWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        int w = i < _widths.size() ? _widths[i] : 12;
        _os << std::left << std::setw(w) << cells[i]
            << (i + 1 < cells.size() ? " " : "");
    }
    _os << "\n";
}

void
TableWriter::rule()
{
    int total = 0;
    for (int w : _widths)
        total += w + 1;
    _os << std::string(static_cast<std::size_t>(total), '-') << "\n";
}

std::string
fmt(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
fmtRatio(double v)
{
    return fmt(v, 2) + "x";
}

double
EnergyStack::total() const
{
    return axcComputePj + localStorePj + l1xPj + llcPj +
           tileLinkPj + hostLinkPj + dramPj + otherPj;
}

EnergyStack
energyStack(const RunResult &r)
{
    namespace c = energy::comp;
    EnergyStack s;
    s.axcComputePj = r.component(c::kAxcCompute);
    s.localStorePj =
        r.component(c::kL0x) + r.component(c::kScratchpad);
    s.l1xPj = r.component(c::kL1x);
    s.llcPj = r.component(c::kLlc);
    s.tileLinkPj = r.component(c::kLinkL0xL1xMsg) +
                   r.component(c::kLinkL0xL1xData) +
                   r.component(c::kLinkL0xL0x);
    s.hostLinkPj = r.component(c::kLinkL1xL2Msg) +
                   r.component(c::kLinkL1xL2Data);
    s.dramPj = r.component(c::kDram) +
               r.component(c::kLinkLlcDram);
    s.otherPj = r.component(c::kAxTlb) + r.component(c::kAxRmap) +
                r.component(c::kHostL1) +
                r.component(c::kLinkHostL1L2);
    return s;
}

void
printLatencyTable(std::ostream &os,
                  const std::vector<std::string> &tags,
                  const std::vector<RunResult> &results)
{
    bool any = false;
    for (const auto &r : results)
        if (!r.latency.empty())
            any = true;
    if (!any)
        return;

    os << "\nlatency percentiles (cycles; telemetry run)\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        if (r.latency.empty())
            continue;
        os << "-- "
           << (i < tags.size() ? tags[i] : r.workload)
           << "\n";
        TableWriter t(os,
                      {"histogram", "samples", "mean", "p50", "p95",
                       "p99", "max"},
                      {32, 9, 9, 9, 9, 9, 9});
        for (const auto &[name, ls] : r.latency) {
            t.row({name, std::to_string(ls.samples), fmt(ls.mean, 1),
                   fmt(ls.p50, 1), fmt(ls.p95, 1), fmt(ls.p99, 1),
                   fmt(ls.max, 1)});
        }
    }
}

} // namespace fusion::core
