/**
 * @file
 * The top-level simulated system: one host tile (core, L1, NUCA LLC
 * with directory MESI, DRAM) plus the accelerator organization the
 * SystemConfig selects — scratchpads + oracle DMA, a shared MESI
 * L1X, or the FUSION tile (L0Xs + ACC L1X, optionally with Dx
 * forwarding).
 *
 * System::run() executes a whole captured Program: the host writes
 * the inputs, the accelerated invocations run in program order
 * (sequential-program offload semantics, Section 1), and the host
 * consumes the outputs — which is what generates the host-tile
 * forwarded requests of Table 6.
 */

#ifndef FUSION_CORE_SYSTEM_HH
#define FUSION_CORE_SYSTEM_HH

#include <memory>
#include <unordered_set>
#include <vector>

#include "accel/accel_core.hh"
#include "accel/dma_engine.hh"
#include "accel/scratchpad_frontend.hh"
#include "accel/tile.hh"
#include "accel/tile_mesi.hh"
#include "core/results.hh"
#include "core/system_config.hh"
#include "host/host_core.hh"
#include "host/host_l1.hh"
#include "host/llc.hh"
#include "mem/dram.hh"
#include "mem/scratchpad.hh"
#include "trace/analysis.hh"
#include "trace/trace.hh"
#include "vm/page_table.hh"

namespace fusion::core
{

/** A fully assembled simulated system bound to one Program. */
class System
{
  public:
    System(const SystemConfig &cfg, const trace::Program &prog);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run the whole program to completion and collect results. */
    RunResult run();

    /** Simulation services (tests poke at stats/energy). */
    SimContext &ctx() { return _ctx; }
    const SystemConfig &config() const { return _cfg; }
    /** The first FUSION tile (null for SCRATCH/SHARED). */
    accel::FusionTile *tile()
    {
        return _tiles.empty() ? nullptr : _tiles.front().get();
    }
    /** All FUSION tiles. */
    std::vector<std::unique_ptr<accel::FusionTile>> &tiles()
    {
        return _tiles;
    }
    host::Llc &llc() { return *_llc; }
    vm::PageTable &pageTable() { return _pt; }

  private:
    /** MemPort adapter for the SHARED organization. */
    class SharedFrontend;

    void runInvocation(std::size_t idx, sim::SmallFn<void()> then);
    void runScratchWindows(std::size_t inv_idx, std::size_t widx,
                           sim::SmallFn<void()> then);
    /** Dependence-driven overlapped execution (cached systems). */
    void runOverlapped(sim::SmallFn<void()> then);
    void pumpOverlap();
    void launchInvocation(std::size_t idx,
                          sim::SmallFn<void()> completion);
    /** Self-rescheduling interval-metrics sampler (telemetry). */
    void scheduleSample(Tick interval);
    void collect(RunResult &r) const;

    SystemConfig _cfg;
    const trace::Program &_prog;
    SimContext _ctx;
    vm::PageTable _pt;

    // Host tile.
    std::unique_ptr<mem::Dram> _dram;
    std::unique_ptr<host::Llc> _llc;
    std::unique_ptr<interconnect::Link> _hostL1Link;
    std::unique_ptr<host::HostL1> _hostL1;
    std::unique_ptr<host::HostCore> _hostCore;

    // Accelerator cores (all organizations).
    std::vector<std::unique_ptr<accel::AccelCore>> _cores;

    // SCRATCH organization.
    std::vector<std::unique_ptr<mem::Scratchpad>> _spms;
    std::vector<std::unique_ptr<accel::ScratchpadFrontend>>
        _spmPorts;
    std::unique_ptr<interconnect::Link> _dmaLink;
    std::unique_ptr<accel::DmaEngine> _dma;
    /// Per-invocation window decomposition (lazy).
    mutable std::vector<std::vector<trace::DmaWindow>> _windows;
    std::unordered_set<Addr> _residentLines;

    // SHARED organization.
    std::unique_ptr<interconnect::Link> _sharedTileLink;
    std::unique_ptr<interconnect::Link> _sharedLlcLink;
    std::unique_ptr<host::HostL1> _sharedL1x;
    std::unique_ptr<SharedFrontend> _sharedPort;

    // FUSION organizations. Accelerators are block-partitioned
    // over the tiles; _tileOf/_localId map a global AccelId to its
    // tile and the L0X index within it.
    std::vector<std::unique_ptr<accel::FusionTile>> _tiles;
    std::vector<std::uint32_t> _tileOf;
    std::vector<AccelId> _localId;
    trace::ForwardPlan _fwdPlan;
    /// FUSION-MESI: the conventional intra-tile protocol.
    std::unique_ptr<accel::MesiTile> _mesiTile;

    accel::FusionTile &tileFor(AccelId a)
    {
        return *_tiles[_tileOf[static_cast<std::size_t>(a)]];
    }

    // Telemetry (null/zero when tracing is off).
    obs::SpanTracer *_obsTracer = nullptr;
    std::uint32_t _obsTrack = 0;

    // Overlap scheduling state.
    stats::Scalar *_stOverlapLaunches; ///< resolved once in the ctor
    std::vector<std::vector<std::uint32_t>> _invDeps;
    std::vector<bool> _invDone;
    std::vector<bool> _invLaunched;
    std::vector<bool> _accelBusy;
    std::size_t _invRemaining = 0;
    sim::SmallFn<void()> _overlapThen;

    // Phase bookkeeping.
    Tick _accelStart = 0;
    Tick _accelEnd = 0;
    Tick _dmaWait = 0;
    std::map<std::string, std::uint64_t> _funcCycles;
    std::map<std::string, double> _funcEnergyPj;
    std::vector<std::uint64_t> _invCycles;
};

} // namespace fusion::core

#endif // FUSION_CORE_SYSTEM_HH
