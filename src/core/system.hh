/**
 * @file
 * The top-level simulated system: one host tile (core, L1, NUCA LLC
 * with directory MESI, DRAM) plus the accelerator organization the
 * SystemConfig selects, held behind the uniform TileFrontend
 * interface — scratchpads + oracle DMA, a shared MESI L1X, the
 * FUSION tile (L0Xs + ACC L1X, optionally with Dx forwarding), the
 * FUSION-MESI directory tile, or (SystemKind::Auto) all of them
 * with the orchestrator picking one per invocation.
 *
 * System::run() executes a whole captured Program: the host writes
 * the inputs, the accelerated invocations run in program order
 * (sequential-program offload semantics, Section 1), and the host
 * consumes the outputs — which is what generates the host-tile
 * forwarded requests of Table 6.
 */

#ifndef FUSION_CORE_SYSTEM_HH
#define FUSION_CORE_SYSTEM_HH

#include <memory>
#include <vector>

#include "accel/accel_core.hh"
#include "accel/tile.hh"
#include "accel/tile_frontend.hh"
#include "core/results.hh"
#include "core/system_config.hh"
#include "host/host_core.hh"
#include "host/host_l1.hh"
#include "host/llc.hh"
#include "mem/dram.hh"
#include "sim/shard/router.hh"
#include "trace/analysis.hh"
#include "trace/trace.hh"
#include "vm/page_table.hh"

namespace fusion::orch
{
class Orchestrator;
}

namespace fusion::core
{

/** A fully assembled simulated system bound to one Program. */
class System
{
  public:
    System(const SystemConfig &cfg, const trace::Program &prog);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run the whole program to completion and collect results. */
    RunResult run();

    /** Simulation services (tests poke at stats/energy). */
    SimContext &ctx() { return _ctx; }
    const SystemConfig &config() const { return _cfg; }
    /** The first FUSION tile (null for SCRATCH/SHARED/MESI). */
    accel::FusionTile *tile()
    {
        auto *ts = fusionTiles();
        return ts && !ts->empty() ? ts->front().get() : nullptr;
    }
    /** All FUSION tiles (empty for organizations without one). */
    std::vector<std::unique_ptr<accel::FusionTile>> &tiles()
    {
        auto *ts = fusionTiles();
        return ts ? *ts : _noTiles;
    }
    host::Llc &llc() { return *_llc; }
    vm::PageTable &pageTable() { return _pt; }

    /** The frontend currently running invocations (AUTO: changes
     *  over the run; null until the first invocation launches). */
    accel::TileFrontend *activeFrontend() { return _active; }
    /** The AUTO-mode orchestrator (null for static kinds). */
    orch::Orchestrator *orchestrator() { return _orch.get(); }

  private:
    void runInvocation(std::size_t idx, sim::SmallFn<void()> then);
    /** Dependence-driven overlapped execution (cached systems). */
    void runOverlapped(sim::SmallFn<void()> then);
    void pumpOverlap();
    void launchInvocation(std::size_t idx,
                          sim::SmallFn<void()> completion);
    /** Self-rescheduling interval-metrics sampler (telemetry). */
    void scheduleSample(Tick interval);
    void collect(RunResult &r) const;

    /** Frontend registered for @p kind (null when absent). */
    accel::TileFrontend *frontendFor(SystemKind kind);
    /** The FUSION tile vector of whichever frontend has one. */
    std::vector<std::unique_ptr<accel::FusionTile>> *fusionTiles();

    SystemConfig _cfg;
    const trace::Program &_prog;
    SimContext _ctx;
    vm::PageTable _pt;

    // Sharded kernel (DESIGN.md §8). Non-null only when
    // cfg.shardDomains > 1 resolves to >= 2 domains for this kind;
    // installed on the EventQueue facade before any component
    // constructs so every event lands in a domain queue.
    std::unique_ptr<shard::Router> _shard;

    // Host tile.
    std::unique_ptr<mem::Dram> _dram;
    std::unique_ptr<host::Llc> _llc;
    std::unique_ptr<interconnect::Link> _hostL1Link;
    std::unique_ptr<host::HostL1> _hostL1;
    std::unique_ptr<host::HostCore> _hostCore;

    // Accelerator cores (all organizations).
    std::vector<std::unique_ptr<accel::AccelCore>> _cores;

    // Accelerator-side organizations behind the uniform frontend
    // interface. Static kinds hold exactly one (constructed in the
    // same order the old per-kind wiring was, for byte-identical
    // output); AUTO holds every static frontend plus the
    // orchestrator that picks between them.
    std::vector<std::unique_ptr<accel::TileFrontend>> _frontends;
    accel::TileFrontend *_active = nullptr;
    std::unique_ptr<orch::Orchestrator> _orch;
    /// Invocations launched and not yet completed (guard: AUTO must
    /// run serially on a single active frontend).
    std::size_t _invInFlight = 0;
    /// Empty fallback so tiles() can return a reference.
    std::vector<std::unique_ptr<accel::FusionTile>> _noTiles;

    // Telemetry (null/zero when tracing is off).
    obs::SpanTracer *_obsTracer = nullptr;
    std::uint32_t _obsTrack = 0;

    // Overlap scheduling state.
    stats::Scalar *_stOverlapLaunches; ///< resolved once in the ctor
    std::vector<std::vector<std::uint32_t>> _invDeps;
    std::vector<bool> _invDone;
    std::vector<bool> _invLaunched;
    std::vector<bool> _accelBusy;
    std::size_t _invRemaining = 0;
    sim::SmallFn<void()> _overlapThen;

    // Phase bookkeeping.
    Tick _accelStart = 0;
    Tick _accelEnd = 0;
    std::map<std::string, std::uint64_t> _funcCycles;
    std::map<std::string, double> _funcEnergyPj;
    std::vector<std::uint64_t> _invCycles;
};

} // namespace fusion::core

#endif // FUSION_CORE_SYSTEM_HH
