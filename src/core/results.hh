/**
 * @file
 * Result records produced by one end-to-end simulation run: every
 * number the paper's tables and figures are built from.
 */

#ifndef FUSION_CORE_RESULTS_HH
#define FUSION_CORE_RESULTS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>
#include <string>

#include "core/system_config.hh"
#include "obs/metrics.hh"
#include "sim/guard/sim_error.hh"
#include "sim/types.hh"

namespace fusion::obs
{
class SpanTracer;
}

namespace fusion::core
{

/**
 * Host-side (wall-clock) performance of one run. Deliberately kept
 * out of the simulated metrics: it varies run to run, so it is only
 * serialized on request (toJson(true)) to keep the determinism
 * guarantees of the default output intact.
 */
struct RunPerf
{
    /** Wall-clock seconds spent inside System::run(). */
    double hostSeconds = 0.0;
    /** Kernel events executed by the run's event queue. */
    std::uint64_t events = 0;
    /** events / hostSeconds (0 when the run was too fast to time). */
    double eventsPerSecond = 0.0;
};

/** Everything measured over one (workload, system) run. */
struct RunResult
{
    std::string workload;
    SystemKind kind = SystemKind::Fusion;

    /** Full program duration (host init -> host final done). */
    Tick totalCycles = 0;
    /** Accelerated-region duration (first invocation start ->
     *  last invocation end), the Figure 6b metric. */
    Tick accelCycles = 0;
    /** Cycles the accelerators sat waiting on DMA fill/drain. */
    Tick dmaCycles = 0;

    /** Dynamic energy by ledger component (pJ). */
    std::map<std::string, double> energyPj;

    /** Per-function accelerated cycles (Table 3 KCyc). */
    std::map<std::string, std::uint64_t> funcCycles;
    /** Per-invocation durations, in program order (timestamp-width
     *  study: Section 4 sizes the ACC timestamps by invocation
     *  length). */
    std::vector<std::uint64_t> invocationCycles;
    /** Per-function dynamic energy, measured as whole-ledger
     *  deltas across each invocation (Table 3 %En). */
    std::map<std::string, double> funcEnergyPj;

    // Link traffic (Figure 6c / Table 4).
    std::uint64_t l0xL1xCtrlMsgs = 0;
    std::uint64_t l0xL1xDataMsgs = 0;
    std::uint64_t l0xL1xFlits = 0;
    std::uint64_t l1xL2CtrlMsgs = 0;
    std::uint64_t l1xL2DataMsgs = 0;
    std::uint64_t l0xL0xDataMsgs = 0;

    // Virtual memory (Table 6).
    std::uint64_t axTlbLookups = 0;
    std::uint64_t axRmapLookups = 0;
    /** Host->tile forwarded MESI demands (Section 3.2). */
    std::uint64_t fwdsToTile = 0;

    // DMA (Table 6d).
    std::uint64_t dmaOps = 0;
    std::uint64_t dmaBytes = 0;
    /** Accelerator working set (unique lines * 64 B). */
    std::uint64_t workingSetBytes = 0;

    // AUTO mode (SystemKind::Auto only; empty/zero otherwise so
    // static-kind JSON stays byte-identical to pre-orchestrator
    // output).
    /** Coherence-mode transitions the orchestrator performed. */
    std::uint64_t modeSwitches = 0;
    /** Invocations run under each mode, keyed by short name. */
    std::map<std::string, std::uint64_t> modeInvocations;

    // L0X behaviour (Tables 4 & 5).
    std::uint64_t l0xFills = 0;
    std::uint64_t l0xWritebacks = 0;
    std::uint64_t l0xForwards = 0;
    std::uint64_t l1xHits = 0;
    std::uint64_t l1xMisses = 0;

    /**
     * Set when the run failed: the typed error (category, component,
     * tick, diagnostic dump) the hardening layer surfaced instead of
     * aborting. Every metric above is zero/empty on a failed run.
     */
    std::optional<guard::SimError> error;
    /** True when the run ended in a SimError. */
    bool failed() const { return error.has_value(); }

    // Fault-injection bookkeeping for campaign triage. Never
    // serialized by toJson(): injected runs must hash against clean
    // golden output on the JSON payload alone.
    /** Schedule entries that fired during the run. */
    std::uint32_t faultsFired = 0;
    /** Bitmask (1 << FaultKind) of fault kinds that fired. */
    std::uint32_t faultFiredMask = 0;

    /** Host wall-clock throughput (filled by System::run()). */
    std::optional<RunPerf> perf;

    // Telemetry (all empty/disengaged unless the run enabled it, so
    // default JSON stays byte-identical to an untraced build).
    /** Interval time series (engaged when --metrics-interval > 0). */
    std::optional<obs::MetricsSeries> metrics;
    /** Span trace (non-null when --trace-out was requested). */
    std::shared_ptr<const obs::SpanTracer> trace;
    /** Latency percentiles per stats-tree histogram. */
    std::map<std::string, obs::LatencyStat> latency;

    /** Total accelerator-side cache energy (L0X/SPM + L1X), the
     *  Table 5 "AXC Cache" column. */
    double axcCachePj() const;
    /** Total tile link energy (L0X-L1X + L0X-L0X), the Table 5
     *  "AXC Link" column. */
    double axcLinkPj() const;
    /** Whole-system dynamic energy (including DRAM). */
    double totalPj() const;
    /** Cache-hierarchy + interconnect energy only — the scope of
     *  the paper's Figure 6a stacks (DRAM cold-miss energy is the
     *  same across systems and would dilute the ratios). */
    double hierarchyPj() const;
    /** Energy of one component (0 when absent). */
    double component(const std::string &name) const;

    /**
     * Serialize every measured field as one JSON object (stable key
     * order, full double precision). Two runs of the same job are
     * byte-identical, which is what the sweep determinism test and
     * the machine-readable SweepReport build on.
     *
     * @param include_perf also emit the wall-clock "perf" object.
     *        Off by default because host timing is nondeterministic
     *        and would break byte-identical comparisons.
     */
    std::string toJson(bool include_perf = false) const;
};

/** On-disk RunResult blob version (sweep::ResultCache entries).
 *  Bump on any serializeResult/toJson field change. */
inline constexpr std::uint32_t kResultBlobVersion = 1;

/**
 * Serialize a *cacheable* RunResult as a self-validating binary blob
 * ("FRES" envelope + FNV-1a payload hash). Covers exactly the fields
 * a clean, telemetry-free run populates — workload, kind, every
 * simulated metric, the AUTO-mode block, and the wall-clock perf
 * block — such that deserializeResult() followed by toJson() is
 * byte-identical to the original's toJson(). Failed runs (error),
 * fault bookkeeping and telemetry payloads (metrics/trace/latency)
 * are deliberately out of scope: the result cache refuses to store
 * such runs (sweep::ResultCache::cacheable).
 */
std::string serializeResult(const RunResult &r);

/**
 * Decode a serializeResult() blob. Corruption-tolerant: returns
 * false on any truncation, version or hash mismatch (reason in
 * @p err when non-null) and leaves @p out untouched.
 */
bool deserializeResult(std::string_view bytes, RunResult &out,
                       std::string *err = nullptr);

} // namespace fusion::core

#endif // FUSION_CORE_RESULTS_HH
