#include "core/system.hh"

#include <algorithm>
#include <chrono>

#include "orchestrator/orchestrator.hh"
#include "sim/guard/watchdog.hh"
#include "sim/logging.hh"

namespace fusion::core
{

namespace
{

/** Walk the stats tree collecting percentile summaries for every
 *  histogram that saw samples (dot-joined path as the key). */
void
harvestLatency(const stats::Group &g, const std::string &prefix,
               std::map<std::string, obs::LatencyStat> &out)
{
    for (const auto &[name, h] : g.histograms()) {
        if (h.samples() == 0)
            continue;
        obs::LatencyStat ls;
        ls.samples = h.samples();
        ls.mean = h.mean();
        ls.p50 = h.percentile(50.0);
        ls.p95 = h.percentile(95.0);
        ls.p99 = h.percentile(99.0);
        ls.max = h.maxValue();
        out[prefix + name] = ls;
    }
    for (const auto &[name, child] : g.children())
        harvestLatency(child, prefix + name + ".", out);
}

} // namespace

System::System(const SystemConfig &cfg, const trace::Program &prog)
    : _cfg(cfg), _prog(prog)
{
    // Arm the hardening layer before any component constructs, so
    // components can self-register snapshots and invariants in
    // deterministic (construction) order.
    _ctx.guard.configure(cfg.guard);

    // Telemetry likewise configures before components construct so
    // they can register tracks/gauges in deterministic order. When
    // everything is off this leaves a null tracer and no sampler —
    // the run is byte-identical to an untraced one.
    _ctx.obs.configure(cfg.obs);
    _obsTracer = _ctx.obs.tracer();
    if (_obsTracer)
        _obsTrack = _obsTracer->registerTrack("system");
    _ctx.obs.registerGauge("eq.pending", [this] {
        return static_cast<double>(_ctx.eq.pending());
    });
    _ctx.obs.registerCounter("eq.events", [this] {
        return static_cast<double>(_ctx.eq.executed());
    });

    // Sharded kernel (DESIGN.md §8): install the domain router
    // before any component constructs, so construction-time events
    // (DRAM refresh, telemetry samplers) land in domain 0 with the
    // exact sequence numbers the serial kernel would have handed
    // them. Only organizations with an asynchronous tile<->LLC ring
    // link get tile-side domains; SCRATCH (synchronous DMA into the
    // LLC) and AUTO (frontend switching spans the partition) degrade
    // to the serial kernel.
    if (cfg.shardDomains > 1 && cfg.kind != SystemKind::Auto) {
        std::uint32_t accels = std::max(1u, prog.accelCount());
        std::uint32_t tile_domains = 0;
        switch (cfg.kind) {
          case SystemKind::Shared:
          case SystemKind::FusionMesi:
            tile_domains = 1;
            break;
          case SystemKind::Fusion:
          case SystemKind::FusionDx:
            tile_domains =
                std::min(std::max(1u, cfg.numTiles), accels);
            break;
          default:
            break;
        }
        std::uint32_t d =
            std::min(cfg.shardDomains, 1 + tile_domains);
        if (d >= 2)
            _shard = std::make_unique<shard::Router>(_ctx, d);
    }

    _stOverlapLaunches =
        &_ctx.stats.root().child("scheduler").scalar(
            "overlap_launches");

    // Map every traced virtual page up front (the OS would have
    // faulted them in during the original execution).
    auto map_ops = [this](const std::vector<trace::TraceOp> &ops) {
        for (const auto &op : ops) {
            if (op.kind != trace::OpKind::Compute)
                _pt.ensureMapped(_prog.pid, op.addr);
        }
    };
    map_ops(prog.hostInit);
    map_ops(prog.hostFinal);
    for (const auto &inv : prog.invocations)
        map_ops(inv.ops);

    // Host tile.
    _dram = std::make_unique<mem::Dram>(_ctx, cfg.dram);
    _llc = std::make_unique<host::Llc>(_ctx, cfg.llc, *_dram);
    _hostL1Link = std::make_unique<interconnect::Link>(
        _ctx, interconnect::LinkParams{
                  "hostl1_l2", energy::LinkClass::HostL1ToL2, 2,
                  energy::comp::kLinkHostL1L2,
                  energy::comp::kLinkHostL1L2});
    host::HostL1Params hp;
    hp.name = "host.l1";
    hp.capacityBytes = cfg.hostL1Bytes;
    hp.assoc = cfg.hostL1Assoc;
    hp.ringNode = 0;
    _hostL1 = std::make_unique<host::HostL1>(_ctx, hp, *_llc,
                                             _hostL1Link.get());
    _hostCore = std::make_unique<host::HostCore>(_ctx, cfg.hostCore,
                                                 *_hostL1, _pt);

    // Accelerator cores.
    std::uint32_t num_accels = std::max(1u, prog.accelCount());
    accel::AccelCoreParams ap;
    ap.datapathWidth = cfg.datapathWidth;
    ap.storeBuffer = cfg.accelStoreBuffer;
    for (std::uint32_t a = 0; a < num_accels; ++a) {
        _cores.push_back(std::make_unique<accel::AccelCore>(
            _ctx, ap, static_cast<AccelId>(a)));
    }

    // Accelerator-side organization(s). A static kind constructs
    // exactly one frontend here — the same components, in the same
    // order, the old per-kind wiring built, so the serialized
    // output is byte-identical across the refactor. AUTO constructs
    // every static frontend (same-named stats/energy entries merge
    // into aggregates) plus the orchestrator that picks one per
    // invocation.
    accel::FrontendEnv env{_ctx, _cfg, _prog, *_llc, _pt,
                           num_accels};
    if (cfg.kind == SystemKind::Auto) {
        for (SystemKind k : kStaticSystemKinds)
            _frontends.push_back(accel::makeTileFrontend(k, env));
        _orch = std::make_unique<orch::Orchestrator>(_ctx, _cfg,
                                                     _prog);
        // AUTO invariant: one invocation in flight at most, and
        // never without an active frontend (single active frontend
        // per invocation).
        _ctx.guard.registerInvariant(
            "orchestrator",
            [this](const guard::InvariantContext &,
                   std::vector<std::string> &out) {
                if (_invInFlight > 1) {
                    out.push_back(
                        "AUTO mode must run serially; " +
                        std::to_string(_invInFlight) +
                        " invocations in flight");
                }
                if (_invInFlight == 1 && _active == nullptr) {
                    out.push_back("invocation in flight with no "
                                  "active frontend");
                }
            });
    } else {
        _frontends.push_back(
            accel::makeTileFrontend(cfg.kind, env));
        _active = _frontends.front().get();
    }

    // Partition the accelerator side onto the router's domains:
    // each frontend declares its tiles' LLC ring links cross-domain
    // edges and records which domain every accelerator runs in.
    if (_shard) {
        for (auto &f : _frontends)
            f->bindShard(*_shard);
    }
}

System::~System() = default;

accel::TileFrontend *
System::frontendFor(SystemKind kind)
{
    for (auto &f : _frontends) {
        if (f->kind() == kind)
            return f.get();
    }
    return nullptr;
}

std::vector<std::unique_ptr<accel::FusionTile>> *
System::fusionTiles()
{
    for (auto &f : _frontends) {
        if (auto *ts = f->fusionTiles())
            return ts;
    }
    return nullptr;
}

RunResult
System::run()
{
    bool finished = false;

    // Bind this thread's panics to our clock and stand up the
    // forward-progress watchdog for the duration of the run.
    guard::TickScope tick_scope(_ctx.eq);
    guard::Watchdog wd(_ctx.guard, _ctx.eq);

    _ctx.eq.scheduleIn(0, [this, &finished] {
        _hostCore->run(_prog.hostInit, _prog.pid, [this, &finished] {
            _accelStart = _ctx.now();
            auto run_all = [this](sim::SmallFn<void()> then) {
                // AUTO runs serially (the orchestrator's decisions
                // are per-invocation and the switch flush is a
                // barrier); static frontends opt in or out of
                // overlap (SCRATCH's one DMA engine serializes).
                if (_cfg.overlapInvocations && !_orch &&
                    _active->supportsOverlap()) {
                    runOverlapped(std::move(then));
                } else {
                    runInvocation(0, std::move(then));
                }
            };
            run_all([this, &finished] {
                _accelEnd = _ctx.now();
                _hostCore->run(_prog.hostFinal, _prog.pid,
                               [this, &finished] {
                                   finished = true;
                               });
            });
        });
    });

    // Interval metrics ride the event queue at Stats priority so a
    // tick's component state is settled before the gauges are read.
    if (Tick mi = _ctx.obs.metricsInterval(); mi > 0)
        scheduleSample(mi);

    // Drain: completion plus any outstanding lease-expiry
    // housekeeping (self-downgrades schedule into the future).
    Tick finish_tick = 0;
    const std::uint64_t events_before = _ctx.eq.executed();
    const auto host_start = std::chrono::steady_clock::now();
    while (!_ctx.eq.empty()) {
        wd.beforeStep();
        _ctx.eq.step();
        if (finished && finish_tick == 0)
            finish_tick = _ctx.now();
    }
    const auto host_end = std::chrono::steady_clock::now();
    wd.onDrained(finished);
    wd.atEnd();

    RunResult r;
    RunPerf perf;
    perf.hostSeconds =
        std::chrono::duration<double>(host_end - host_start).count();
    perf.events = _ctx.eq.executed() - events_before;
    perf.eventsPerSecond =
        perf.hostSeconds > 0.0
            ? static_cast<double>(perf.events) / perf.hostSeconds
            : 0.0;
    r.perf = perf;
    r.workload = _prog.name;
    r.kind = _cfg.kind;
    r.totalCycles = finish_tick;
    r.accelCycles = _accelEnd - _accelStart;
    for (const auto &f : _frontends)
        r.dmaCycles += f->dmaWaitCycles();
    r.funcCycles = _funcCycles;
    r.invocationCycles = _invCycles;
    r.metrics = _ctx.obs.takeMetrics();
    r.trace = _ctx.obs.shareTrace();
    r.faultsFired = _ctx.guard.faultsFired();
    r.faultFiredMask = _ctx.guard.firedFaultMask();
    collect(r);
    return r;
}

void
System::scheduleSample(Tick interval)
{
    _ctx.eq.scheduleIn(
        static_cast<Cycles>(interval),
        [this, interval] {
            _ctx.obs.sample(_ctx.now());
            // popBucket removed this event from the pending count
            // before invoking it, so pending() now counts only real
            // simulation work: reschedule while any remains, else
            // let the drain loop terminate.
            if (_ctx.eq.pending() > 0)
                scheduleSample(interval);
        },
        EventPriority::Stats);
}

void
System::runInvocation(std::size_t idx, sim::SmallFn<void()> then)
{
    if (idx >= _prog.invocations.size()) {
        then();
        return;
    }
    launchInvocation(idx, [this, idx,
                           then = std::move(then)]() mutable {
        runInvocation(idx + 1, std::move(then));
    });
}

void
System::launchInvocation(std::size_t idx,
                         sim::SmallFn<void()> completion_cb)
{
    const trace::Invocation &inv = _prog.invocations[idx];
    const trace::FunctionMeta &meta =
        _prog.functions[static_cast<std::size_t>(inv.func)];
    accel::AccelCore &core =
        *_cores[static_cast<std::size_t>(meta.accel)];
    Tick t0 = _ctx.now();
    double e0 = _ctx.energy.grandTotal();
    if (_obsTracer)
        _obsTracer->begin(_obsTrack, obs::SpanKind::Invocation,
                          static_cast<Addr>(idx), t0);

    auto completion = [this, idx, name = meta.name, t0, e0,
                       cb = std::move(completion_cb)]() mutable {
        if (_obsTracer)
            _obsTracer->end(_obsTrack, obs::SpanKind::Invocation,
                            static_cast<Addr>(idx), _ctx.now());
        _funcCycles[name] += _ctx.now() - t0;
        // Energy attribution per function (Table 3 %En). Under
        // overlapped execution concurrent invocations share the
        // window, so this is approximate there; exact when serial.
        _funcEnergyPj[name] += _ctx.energy.grandTotal() - e0;
        if (_invCycles.size() < _prog.invocations.size())
            _invCycles.resize(_prog.invocations.size(), 0);
        _invCycles[idx] = _ctx.now() - t0;
        if (_orch) {
            _orch->afterInvocation(idx, _active->counters(),
                                   _ctx.now() - t0,
                                   _ctx.energy.grandTotal() - e0);
        }
        --_invInFlight;
        cb();
    };

    auto do_launch = [this, idx, &core, accel = meta.accel,
                      completion =
                          std::move(completion)]() mutable {
        ++_invInFlight;
        if (_orch)
            _orch->beforeLaunch(idx, _active->counters());
        if (_shard == nullptr) {
            _active->launch(idx, core, std::move(completion));
            return;
        }
        // Sharded: the launch runs on the accelerator's domain so
        // the invocation's event chain schedules there, and the
        // completion hops back to the host domain so inter-
        // invocation glue (host code, the next launch) does too.
        // onDomain is synchronous — it only re-points which queue
        // receives the closures' schedule calls, so the executed
        // order (and the serialized output) is untouched.
        shard::Router &sh = *_shard;
        auto done = sim::SmallFn<void()>(
            [&sh, completion = std::move(completion)]() mutable {
                sh.onDomain(0, [&completion] { completion(); });
            });
        sh.onDomain(
            sh.accelDomain(static_cast<std::uint32_t>(accel)),
            [&] { _active->launch(idx, core, std::move(done)); });
    };

    if (!_orch) {
        do_launch();
        return;
    }

    // AUTO: ask the orchestrator which organization runs this
    // invocation; pay the modeled flush cost when it differs from
    // the active one.
    SystemKind want = _orch->decide(idx);
    accel::TileFrontend *next = frontendFor(want);
    fusion_assert(next != nullptr, "no frontend for decided mode ",
                  systemKindName(want));
    if (_active == next) {
        do_launch();
        return;
    }
    if (_active == nullptr) {
        // First invocation: adopting the initial mode is free.
        _active = next;
        _active->activate();
        do_launch();
        return;
    }
    SystemKind from = _active->kind();
    _active->deactivate();
    _active = next;
    _orch->transition(
        from, want, _orch->flushLinesBefore(idx),
        [this, do_launch = std::move(do_launch)]() mutable {
            _active->activate();
            do_launch();
        });
}

void
System::runOverlapped(sim::SmallFn<void()> then)
{
    std::size_t n = _prog.invocations.size();
    if (n == 0) {
        then();
        return;
    }
    _invDeps = trace::invocationDependences(_prog);
    _invDone.assign(n, false);
    _invLaunched.assign(n, false);
    _accelBusy.assign(_cores.size(), false);
    _invRemaining = n;
    _overlapThen = std::move(then);
    pumpOverlap();
}

void
System::pumpOverlap()
{
    if (_invRemaining == 0) {
        if (!_overlapThen)
            return; // completion already delivered reentrantly
        auto then = std::move(_overlapThen); // move empties it
        then();
        return;
    }
    for (std::size_t j = 0; j < _prog.invocations.size(); ++j) {
        if (_invLaunched[j])
            continue;
        auto accel = static_cast<std::size_t>(
            _prog.functions[static_cast<std::size_t>(
                                _prog.invocations[j].func)]
                .accel);
        if (_accelBusy[accel])
            continue;
        bool ready = true;
        for (std::uint32_t d : _invDeps[j]) {
            if (!_invDone[d]) {
                ready = false;
                break;
            }
        }
        if (!ready)
            continue;
        _invLaunched[j] = true;
        _accelBusy[accel] = true;
        *_stOverlapLaunches += 1;
        launchInvocation(j, [this, j, accel] {
            _invDone[j] = true;
            _accelBusy[accel] = false;
            --_invRemaining;
            pumpOverlap();
        });
    }
}

void
System::collect(RunResult &r) const
{
    r.energyPj = _ctx.energy.components();
    r.workingSetBytes = trace::footprintLines(_prog) * kLineBytes;

    const stats::Group &root = _ctx.stats.root();
    auto link_scalar = [&root](const char *link,
                               const char *stat) -> std::uint64_t {
        auto it = root.children().find("links");
        if (it == root.children().end())
            return 0;
        auto jt = it->second.children().find(link);
        if (jt == it->second.children().end())
            return 0;
        if (!jt->second.hasScalar(stat))
            return 0;
        return static_cast<std::uint64_t>(
            jt->second.scalarValue(stat));
    };
    r.l0xL1xCtrlMsgs = link_scalar("l0x_l1x", "ctrl_msgs");
    r.l0xL1xDataMsgs = link_scalar("l0x_l1x", "data_msgs");
    r.l0xL1xFlits = link_scalar("l0x_l1x", "flits");
    // SCRATCH's DMA link books to the same ledger components but a
    // distinct stats group; fold both into the L1X<->L2 counters.
    r.l1xL2CtrlMsgs = link_scalar("l1x_l2", "ctrl_msgs") +
                      link_scalar("dma", "ctrl_msgs");
    r.l1xL2DataMsgs = link_scalar("l1x_l2", "data_msgs") +
                      link_scalar("dma", "data_msgs");
    r.l0xL0xDataMsgs = link_scalar("l0x_l0x", "data_msgs");

    // Per-organization counters come from the frontends. Additive:
    // under AUTO every constructed frontend reports into the same
    // result (the RunResult fields all start at zero, so a single
    // static frontend reproduces the old per-kind blocks exactly).
    for (const auto &f : _frontends)
        f->collect(r);

    if (_orch) {
        r.modeSwitches = _orch->switches();
        r.modeInvocations = _orch->modeInvocations();
    }

    r.funcEnergyPj = _funcEnergyPj;

    // Latency percentiles only when telemetry is on: the default
    // RunResult (and its JSON) must stay byte-identical to an
    // instrumentation-free build.
    if (_cfg.obs.anyEnabled())
        harvestLatency(root, "", r.latency);
}

} // namespace fusion::core
