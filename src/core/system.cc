#include "core/system.hh"

#include <algorithm>
#include <chrono>

#include "sim/guard/watchdog.hh"
#include "sim/logging.hh"

namespace fusion::core
{

namespace
{

/** Walk the stats tree collecting percentile summaries for every
 *  histogram that saw samples (dot-joined path as the key). */
void
harvestLatency(const stats::Group &g, const std::string &prefix,
               std::map<std::string, obs::LatencyStat> &out)
{
    for (const auto &[name, h] : g.histograms()) {
        if (h.samples() == 0)
            continue;
        obs::LatencyStat ls;
        ls.samples = h.samples();
        ls.mean = h.mean();
        ls.p50 = h.percentile(50.0);
        ls.p95 = h.percentile(95.0);
        ls.p99 = h.percentile(99.0);
        ls.max = h.maxValue();
        out[prefix + name] = ls;
    }
    for (const auto &[name, child] : g.children())
        harvestLatency(child, prefix + name + ".", out);
}

} // namespace

/**
 * Translates virtual accelerator accesses for the SHARED L1X and
 * books the per-access AXC<->L1X link traffic (request message +
 * word response) that makes SHARED expensive in link energy
 * (Section 5.2; Figure 6c's "L0X->L1X MSG" / "L1X->L0X DATA" for
 * the SHARED design).
 */
class System::SharedFrontend : public accel::MemPort
{
  public:
    SharedFrontend(SimContext &ctx, host::HostL1 &l1x,
                   interconnect::Link &link,
                   const vm::PageTable &pt, Pid pid)
        : _ctx(ctx), _l1x(l1x), _link(link), _pt(pt), _pid(pid)
    {
    }

    void
    access(Addr va, std::uint32_t size, bool is_write,
           accel::PortDone done) override
    {
        (void)size;
        Addr pa = _pt.translate(_pid, va);
        // Request: 1 flit (+ the store's word payload).
        _link.book(is_write ? interconnect::MsgClass::Word
                            : interconnect::MsgClass::Control);
        _ctx.eq.scheduleIn(
            _link.latency(),
            [this, pa, is_write, done = std::move(done)]() mutable {
                _l1x.access(pa, is_write,
                            [this, is_write,
                             done = std::move(done)]() mutable {
                                // Response: word payload for loads,
                                // ack for stores.
                                _link.book(
                                    is_write
                                        ? interconnect::MsgClass::
                                              Control
                                        : interconnect::MsgClass::
                                              Word);
                                _ctx.eq.scheduleIn(
                                    _link.latency(),
                                    [done = std::move(
                                         done)]() mutable {
                                        done();
                                    });
                            });
            });
    }

  private:
    SimContext &_ctx;
    host::HostL1 &_l1x;
    interconnect::Link &_link;
    const vm::PageTable &_pt;
    Pid _pid;
};

System::System(const SystemConfig &cfg, const trace::Program &prog)
    : _cfg(cfg), _prog(prog)
{
    // Arm the hardening layer before any component constructs, so
    // components can self-register snapshots and invariants in
    // deterministic (construction) order.
    _ctx.guard.configure(cfg.guard);

    // Telemetry likewise configures before components construct so
    // they can register tracks/gauges in deterministic order. When
    // everything is off this leaves a null tracer and no sampler —
    // the run is byte-identical to an untraced one.
    _ctx.obs.configure(cfg.obs);
    _obsTracer = _ctx.obs.tracer();
    if (_obsTracer)
        _obsTrack = _obsTracer->registerTrack("system");
    _ctx.obs.registerGauge("eq.pending", [this] {
        return static_cast<double>(_ctx.eq.pending());
    });
    _ctx.obs.registerCounter("eq.events", [this] {
        return static_cast<double>(_ctx.eq.executed());
    });

    _stOverlapLaunches =
        &_ctx.stats.root().child("scheduler").scalar(
            "overlap_launches");

    // Map every traced virtual page up front (the OS would have
    // faulted them in during the original execution).
    auto map_ops = [this](const std::vector<trace::TraceOp> &ops) {
        for (const auto &op : ops) {
            if (op.kind != trace::OpKind::Compute)
                _pt.ensureMapped(_prog.pid, op.addr);
        }
    };
    map_ops(prog.hostInit);
    map_ops(prog.hostFinal);
    for (const auto &inv : prog.invocations)
        map_ops(inv.ops);

    // Host tile.
    _dram = std::make_unique<mem::Dram>(_ctx, cfg.dram);
    _llc = std::make_unique<host::Llc>(_ctx, cfg.llc, *_dram);
    _hostL1Link = std::make_unique<interconnect::Link>(
        _ctx, interconnect::LinkParams{
                  "hostl1_l2", energy::LinkClass::HostL1ToL2, 2,
                  energy::comp::kLinkHostL1L2,
                  energy::comp::kLinkHostL1L2});
    host::HostL1Params hp;
    hp.name = "host.l1";
    hp.capacityBytes = cfg.hostL1Bytes;
    hp.assoc = cfg.hostL1Assoc;
    hp.ringNode = 0;
    _hostL1 = std::make_unique<host::HostL1>(_ctx, hp, *_llc,
                                             _hostL1Link.get());
    _hostCore = std::make_unique<host::HostCore>(_ctx, cfg.hostCore,
                                                 *_hostL1, _pt);

    // Accelerator cores.
    std::uint32_t num_accels = std::max(1u, prog.accelCount());
    accel::AccelCoreParams ap;
    ap.datapathWidth = cfg.datapathWidth;
    ap.storeBuffer = cfg.accelStoreBuffer;
    for (std::uint32_t a = 0; a < num_accels; ++a) {
        _cores.push_back(std::make_unique<accel::AccelCore>(
            _ctx, ap, static_cast<AccelId>(a)));
    }

    switch (cfg.kind) {
      case SystemKind::Scratch: {
        for (std::uint32_t a = 0; a < num_accels; ++a) {
            _spms.push_back(std::make_unique<mem::Scratchpad>(
                _ctx, cfg.scratchpadBytes,
                "axc" + std::to_string(a) + ".spm"));
            _spmPorts.push_back(
                std::make_unique<accel::ScratchpadFrontend>(
                    _ctx, *_spms.back()));
        }
        // The DMA engine resides at the LLC; its transfer path to
        // the tile is the same physical link class as L1X<->L2 and
        // books against the same components so energy stacks are
        // comparable across systems. Latency includes the average
        // ring traversal.
        _dmaLink = std::make_unique<interconnect::Link>(
            _ctx, interconnect::LinkParams{
                      "dma", energy::LinkClass::L1xToL2, 7,
                      energy::comp::kLinkL1xL2Msg,
                      energy::comp::kLinkL1xL2Data});
        accel::DmaParams dp;
        dp.maxOutstanding = cfg.dmaMaxOutstanding;
        _dma = std::make_unique<accel::DmaEngine>(
            _ctx, dp, *_llc, _dmaLink.get(), _pt);
        _windows.resize(prog.invocations.size());
        break;
      }
      case SystemKind::Shared: {
        _sharedTileLink = std::make_unique<interconnect::Link>(
            _ctx, interconnect::LinkParams{
                      "l0x_l1x", energy::LinkClass::AxcToL1x, 1,
                      energy::comp::kLinkL0xL1xMsg,
                      energy::comp::kLinkL0xL1xData});
        _sharedLlcLink = std::make_unique<interconnect::Link>(
            _ctx, interconnect::LinkParams{
                      "l1x_l2", energy::LinkClass::L1xToL2, 3,
                      energy::comp::kLinkL1xL2Msg,
                      energy::comp::kLinkL1xL2Data});
        host::HostL1Params sp;
        sp.name = "l1x";
        sp.capacityBytes = cfg.l1xBytes;
        sp.assoc = cfg.l1xAssoc;
        sp.banks = cfg.l1xBanks;
        sp.energyComponent = energy::comp::kL1x;
        sp.ringNode = 4; // the tile sits across the ring
        sp.wordAccessScale = 0.5;
        _sharedL1x = std::make_unique<host::HostL1>(
            _ctx, sp, *_llc, _sharedLlcLink.get());
        _sharedPort = std::make_unique<SharedFrontend>(
            _ctx, *_sharedL1x, *_sharedTileLink, _pt, prog.pid);
        break;
      }
      case SystemKind::FusionMesi: {
        _mesiTile = std::make_unique<accel::MesiTile>(
            _ctx, num_accels, cfg.l0xBytes, cfg.l0xAssoc,
            cfg.l1xBytes, cfg.l1xAssoc, cfg.l1xBanks, *_llc, _pt);
        for (std::uint32_t a = 0; a < num_accels; ++a)
            _mesiTile->l0x(static_cast<AccelId>(a))
                .setPid(prog.pid);
        break;
      }
      case SystemKind::Fusion:
      case SystemKind::FusionDx: {
        std::uint32_t num_tiles =
            std::min(std::max(1u, cfg.numTiles), num_accels);
        // Block-partition accelerators over the tiles.
        std::uint32_t per =
            (num_accels + num_tiles - 1) / num_tiles;
        _tileOf.resize(num_accels);
        _localId.resize(num_accels);
        for (std::uint32_t t = 0; t < num_tiles; ++t) {
            std::uint32_t lo = t * per;
            std::uint32_t hi =
                std::min(num_accels, (t + 1) * per);
            if (lo >= hi)
                break;
            accel::TileParams tp;
            tp.numAccels = hi - lo;
            tp.l0xBytes = cfg.l0xBytes;
            tp.l0xAssoc = cfg.l0xAssoc;
            tp.l0xRepl = cfg.l0xRepl;
            tp.writeThrough = cfg.l0xWriteThrough;
            tp.enableDx = cfg.kind == SystemKind::FusionDx;
            tp.l1x.capacityBytes = cfg.l1xBytes;
            tp.l1x.assoc = cfg.l1xAssoc;
            tp.l1x.banks = cfg.l1xBanks;
            tp.l1x.name = num_tiles == 1
                              ? std::string("l1x")
                              : "l1x" + std::to_string(t);
            // Spread tiles over the far side of the ring.
            tp.l1x.ringNode = 4 + t;
            _tiles.push_back(std::make_unique<accel::FusionTile>(
                _ctx, tp, *_llc, _pt));
            for (std::uint32_t a = lo; a < hi; ++a) {
                _tileOf[a] = t;
                _localId[a] = static_cast<AccelId>(a - lo);
            }
        }
        if (cfg.kind == SystemKind::FusionDx)
            _fwdPlan = trace::planForwarding(prog);
        // Lease lengths are per accelerated function; prime each
        // L0X with its function's LT so Dx pushes landing before
        // the consumer's first invocation carry the right lease.
        for (const auto &f : _prog.functions) {
            tileFor(f.accel)
                .l0x(_localId[static_cast<std::size_t>(f.accel)])
                .setFunction(f.leaseTime, prog.pid);
        }
        break;
      }
    }
}

System::~System() = default;

RunResult
System::run()
{
    bool finished = false;

    // Bind this thread's panics to our clock and stand up the
    // forward-progress watchdog for the duration of the run.
    guard::TickScope tick_scope(_ctx.eq);
    guard::Watchdog wd(_ctx.guard, _ctx.eq);

    _ctx.eq.scheduleIn(0, [this, &finished] {
        _hostCore->run(_prog.hostInit, _prog.pid, [this, &finished] {
            _accelStart = _ctx.now();
            auto run_all = [this](sim::SmallFn<void()> then) {
                if (_cfg.overlapInvocations &&
                    _cfg.kind != SystemKind::Scratch) {
                    runOverlapped(std::move(then));
                } else {
                    runInvocation(0, std::move(then));
                }
            };
            run_all([this, &finished] {
                _accelEnd = _ctx.now();
                _hostCore->run(_prog.hostFinal, _prog.pid,
                               [this, &finished] {
                                   finished = true;
                               });
            });
        });
    });

    // Interval metrics ride the event queue at Stats priority so a
    // tick's component state is settled before the gauges are read.
    if (Tick mi = _ctx.obs.metricsInterval(); mi > 0)
        scheduleSample(mi);

    // Drain: completion plus any outstanding lease-expiry
    // housekeeping (self-downgrades schedule into the future).
    Tick finish_tick = 0;
    const std::uint64_t events_before = _ctx.eq.executed();
    const auto host_start = std::chrono::steady_clock::now();
    while (!_ctx.eq.empty()) {
        wd.beforeStep();
        _ctx.eq.step();
        if (finished && finish_tick == 0)
            finish_tick = _ctx.now();
    }
    const auto host_end = std::chrono::steady_clock::now();
    wd.onDrained(finished);
    wd.atEnd();

    RunResult r;
    RunPerf perf;
    perf.hostSeconds =
        std::chrono::duration<double>(host_end - host_start).count();
    perf.events = _ctx.eq.executed() - events_before;
    perf.eventsPerSecond =
        perf.hostSeconds > 0.0
            ? static_cast<double>(perf.events) / perf.hostSeconds
            : 0.0;
    r.perf = perf;
    r.workload = _prog.name;
    r.kind = _cfg.kind;
    r.totalCycles = finish_tick;
    r.accelCycles = _accelEnd - _accelStart;
    r.dmaCycles = _dmaWait;
    r.funcCycles = _funcCycles;
    r.invocationCycles = _invCycles;
    r.metrics = _ctx.obs.takeMetrics();
    r.trace = _ctx.obs.shareTrace();
    collect(r);
    return r;
}

void
System::scheduleSample(Tick interval)
{
    _ctx.eq.scheduleIn(
        static_cast<Cycles>(interval),
        [this, interval] {
            _ctx.obs.sample(_ctx.now());
            // popBucket removed this event from the pending count
            // before invoking it, so pending() now counts only real
            // simulation work: reschedule while any remains, else
            // let the drain loop terminate.
            if (_ctx.eq.pending() > 0)
                scheduleSample(interval);
        },
        EventPriority::Stats);
}

void
System::runInvocation(std::size_t idx, sim::SmallFn<void()> then)
{
    if (idx >= _prog.invocations.size()) {
        then();
        return;
    }
    launchInvocation(idx, [this, idx,
                           then = std::move(then)]() mutable {
        runInvocation(idx + 1, std::move(then));
    });
}

void
System::launchInvocation(std::size_t idx,
                         sim::SmallFn<void()> completion_cb)
{
    const trace::Invocation &inv = _prog.invocations[idx];
    const trace::FunctionMeta &meta =
        _prog.functions[static_cast<std::size_t>(inv.func)];
    accel::AccelCore &core =
        *_cores[static_cast<std::size_t>(meta.accel)];
    Tick t0 = _ctx.now();
    double e0 = _ctx.energy.grandTotal();
    if (_obsTracer)
        _obsTracer->begin(_obsTrack, obs::SpanKind::Invocation,
                          static_cast<Addr>(idx), t0);

    auto completion = [this, idx, name = meta.name, t0, e0,
                       cb = std::move(completion_cb)]() mutable {
        if (_obsTracer)
            _obsTracer->end(_obsTrack, obs::SpanKind::Invocation,
                            static_cast<Addr>(idx), _ctx.now());
        _funcCycles[name] += _ctx.now() - t0;
        // Energy attribution per function (Table 3 %En). Under
        // overlapped execution concurrent invocations share the
        // window, so this is approximate there; exact when serial.
        _funcEnergyPj[name] += _ctx.energy.grandTotal() - e0;
        if (_invCycles.size() < _prog.invocations.size())
            _invCycles.resize(_prog.invocations.size(), 0);
        _invCycles[idx] = _ctx.now() - t0;
        cb();
    };

    switch (_cfg.kind) {
      case SystemKind::Scratch:
        runScratchWindows(idx, 0, std::move(completion));
        return;
      case SystemKind::Shared:
        core.run(inv, meta.mlp, *_sharedPort, std::move(completion));
        return;
      case SystemKind::FusionMesi:
        core.run(inv, meta.mlp, _mesiTile->l0x(meta.accel),
                 std::move(completion));
        return;
      case SystemKind::Fusion:
      case SystemKind::FusionDx: {
        accel::FusionTile &tile = tileFor(meta.accel);
        AccelId local =
            _localId[static_cast<std::size_t>(meta.accel)];
        accel::L0x &l0 = tile.l0x(local);
        l0.setFunction(meta.leaseTime, _prog.pid);
        if (_cfg.kind == SystemKind::FusionDx) {
            auto it = _fwdPlan.find(static_cast<std::uint32_t>(idx));
            // Only consumers on the *same* tile can receive pushes
            // (the L0X-L0X link is intra-tile); remap their ids to
            // tile-local indices.
            std::unordered_map<Addr, trace::ForwardHint> local_plan;
            if (it != _fwdPlan.end()) {
                std::uint32_t my_tile =
                    _tileOf[static_cast<std::size_t>(meta.accel)];
                for (const auto &[line, hint] : it->second) {
                    auto ci = static_cast<std::size_t>(
                        hint.consumer);
                    if (_tileOf[ci] == my_tile) {
                        local_plan[line] = trace::ForwardHint{
                            _localId[ci], hint.earlyOk};
                    }
                }
            }
            tile.installForwardPlan(local, local_plan);
        }
        core.run(inv, meta.mlp, l0,
                 [this, &tile, local,
                  completion = std::move(completion)]() mutable {
                     tile.finishInvocation(local);
                     completion();
                 });
        return;
      }
    }
    fusion_panic("unhandled system kind");
}

void
System::runOverlapped(sim::SmallFn<void()> then)
{
    std::size_t n = _prog.invocations.size();
    if (n == 0) {
        then();
        return;
    }
    _invDeps = trace::invocationDependences(_prog);
    _invDone.assign(n, false);
    _invLaunched.assign(n, false);
    _accelBusy.assign(_cores.size(), false);
    _invRemaining = n;
    _overlapThen = std::move(then);
    pumpOverlap();
}

void
System::pumpOverlap()
{
    if (_invRemaining == 0) {
        if (!_overlapThen)
            return; // completion already delivered reentrantly
        auto then = std::move(_overlapThen); // move empties it
        then();
        return;
    }
    for (std::size_t j = 0; j < _prog.invocations.size(); ++j) {
        if (_invLaunched[j])
            continue;
        auto accel = static_cast<std::size_t>(
            _prog.functions[static_cast<std::size_t>(
                                _prog.invocations[j].func)]
                .accel);
        if (_accelBusy[accel])
            continue;
        bool ready = true;
        for (std::uint32_t d : _invDeps[j]) {
            if (!_invDone[d]) {
                ready = false;
                break;
            }
        }
        if (!ready)
            continue;
        _invLaunched[j] = true;
        _accelBusy[accel] = true;
        *_stOverlapLaunches += 1;
        launchInvocation(j, [this, j, accel] {
            _invDone[j] = true;
            _accelBusy[accel] = false;
            --_invRemaining;
            pumpOverlap();
        });
    }
}

void
System::runScratchWindows(std::size_t inv_idx, std::size_t widx,
                          sim::SmallFn<void()> then)
{
    const trace::Invocation &inv = _prog.invocations[inv_idx];
    const trace::FunctionMeta &meta =
        _prog.functions[static_cast<std::size_t>(inv.func)];
    auto &wins = _windows[inv_idx];
    if (widx == 0 && wins.empty()) {
        wins = trace::segmentWindows(
            inv, _cfg.scratchpadBytes / kLineBytes);
    }
    if (widx >= wins.size()) {
        then();
        return;
    }
    const trace::DmaWindow &w = wins[widx];
    auto spm_idx = static_cast<std::size_t>(meta.accel);
    mem::Scratchpad &spm = *_spms[spm_idx];
    accel::ScratchpadFrontend &port = *_spmPorts[spm_idx];
    accel::AccelCore &core = *_cores[spm_idx];

    Tick fill_start = _ctx.now();
    _dma->fill(w.readLines, _prog.pid, spm,
               [this, inv_idx, widx, &inv, &w, &spm, &port, &core,
                meta, fill_start, then = std::move(then)]() mutable {
        _dmaWait += _ctx.now() - fill_start;
        _residentLines.clear();
        _residentLines.insert(w.readLines.begin(),
                              w.readLines.end());
        _residentLines.insert(w.dirtyLines.begin(),
                              w.dirtyLines.end());
        port.setResidentLines(_residentLines);
        core.run(inv, meta.mlp, port, w.beginOp, w.endOp,
                 [this, inv_idx, widx, &w, &spm,
                  then = std::move(then)]() mutable {
            Tick drain_start = _ctx.now();
            _dma->drain(w.dirtyLines, _prog.pid, spm,
                        [this, inv_idx, widx, drain_start,
                         then = std::move(then)]() mutable {
                _dmaWait += _ctx.now() - drain_start;
                runScratchWindows(inv_idx, widx + 1,
                                  std::move(then));
            });
        });
    });
}

void
System::collect(RunResult &r) const
{
    r.energyPj = _ctx.energy.components();
    r.workingSetBytes = trace::footprintLines(_prog) * kLineBytes;

    const stats::Group &root = _ctx.stats.root();
    auto link_scalar = [&root](const char *link,
                               const char *stat) -> std::uint64_t {
        auto it = root.children().find("links");
        if (it == root.children().end())
            return 0;
        auto jt = it->second.children().find(link);
        if (jt == it->second.children().end())
            return 0;
        if (!jt->second.hasScalar(stat))
            return 0;
        return static_cast<std::uint64_t>(
            jt->second.scalarValue(stat));
    };
    r.l0xL1xCtrlMsgs = link_scalar("l0x_l1x", "ctrl_msgs");
    r.l0xL1xDataMsgs = link_scalar("l0x_l1x", "data_msgs");
    r.l0xL1xFlits = link_scalar("l0x_l1x", "flits");
    // SCRATCH's DMA link books to the same ledger components but a
    // distinct stats group; fold both into the L1X<->L2 counters.
    r.l1xL2CtrlMsgs = link_scalar("l1x_l2", "ctrl_msgs") +
                      link_scalar("dma", "ctrl_msgs");
    r.l1xL2DataMsgs = link_scalar("l1x_l2", "data_msgs") +
                      link_scalar("dma", "data_msgs");
    r.l0xL0xDataMsgs = link_scalar("l0x_l0x", "data_msgs");

    for (std::size_t t = 0; t < _tiles.size(); ++t) {
        accel::FusionTile *tile = _tiles[t].get();
        r.axTlbLookups += tile->tlb().lookups();
        r.axRmapLookups += tile->rmap().lookups();
        r.l1xHits += tile->l1x().hits();
        r.l1xMisses += tile->l1x().misses();
        for (std::uint32_t a = 0; a < tile->numAccels(); ++a) {
            const accel::L0x &l0 =
                tile->l0x(static_cast<AccelId>(a));
            r.l0xFills += l0.fills();
            r.l0xWritebacks += l0.writebacksSent();
            r.l0xForwards += l0.forwardsOut();
        }
        // Host L1 is agent 0; tiles follow in construction order.
        r.fwdsToTile += _llc->fwdsToAgent(static_cast<int>(1 + t));
    }
    if (_sharedL1x) {
        r.l1xHits = _sharedL1x->hits();
        r.l1xMisses = _sharedL1x->misses();
        r.fwdsToTile = _llc->fwdsToAgent(1);
    }
    if (_mesiTile) {
        r.axTlbLookups = _mesiTile->tlb().lookups();
        r.axRmapLookups = _mesiTile->rmap().lookups();
        r.l1xHits = _mesiTile->l1x().hits();
        r.l1xMisses = _mesiTile->l1x().misses();
        for (std::uint32_t a = 0; a < _mesiTile->numAccels(); ++a) {
            const accel::L0xMesi &l0 =
                _mesiTile->l0x(static_cast<AccelId>(a));
            r.l0xFills += l0.fills();
            r.l0xWritebacks += l0.writebacks();
        }
        r.fwdsToTile = _llc->fwdsToAgent(1);
    }
    if (_dma) {
        r.dmaOps = _dma->dmaOps();
        r.dmaBytes = _dma->bytesTransferred();
    }

    r.funcEnergyPj = _funcEnergyPj;

    // Latency percentiles only when telemetry is on: the default
    // RunResult (and its JSON) must stay byte-identical to an
    // instrumentation-free build.
    if (_cfg.obs.anyEnabled())
        harvestLatency(root, "", r.latency);
}

} // namespace fusion::core
