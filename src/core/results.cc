/**
 * @file
 * RunResult aggregate helpers and JSON serialization.
 */

#include "core/results.hh"

#include <cstdio>
#include <sstream>

#include "energy/energy_ledger.hh"
#include "sim/wire.hh"

namespace fusion::core
{

namespace
{

/** Escape a string for a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Shortest round-trippable decimal rendering of a double. */
void
putDouble(std::ostream &os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
putMap(std::ostream &os, const char *key,
       const std::map<std::string, double> &m)
{
    os << ",\"" << key << "\":{";
    bool first = true;
    for (const auto &[k, v] : m) {
        os << (first ? "" : ",") << '"' << jsonEscape(k) << "\":";
        putDouble(os, v);
        first = false;
    }
    os << '}';
}

void
putMap(std::ostream &os, const char *key,
       const std::map<std::string, std::uint64_t> &m)
{
    os << ",\"" << key << "\":{";
    bool first = true;
    for (const auto &[k, v] : m) {
        os << (first ? "" : ",") << '"' << jsonEscape(k)
           << "\":" << v;
        first = false;
    }
    os << '}';
}

void
putUint(std::ostream &os, const char *key, std::uint64_t v)
{
    os << ",\"" << key << "\":" << v;
}

} // namespace

double
RunResult::component(const std::string &name) const
{
    auto it = energyPj.find(name);
    return it == energyPj.end() ? 0.0 : it->second;
}

double
RunResult::axcCachePj() const
{
    return component(energy::comp::kL0x) +
           component(energy::comp::kScratchpad) +
           component(energy::comp::kL1x);
}

double
RunResult::axcLinkPj() const
{
    return component(energy::comp::kLinkL0xL1xMsg) +
           component(energy::comp::kLinkL0xL1xData) +
           component(energy::comp::kLinkL0xL0x);
}

double
RunResult::totalPj() const
{
    double t = 0.0;
    for (const auto &[k, v] : energyPj)
        t += v;
    return t;
}

double
RunResult::hierarchyPj() const
{
    return totalPj() - component(energy::comp::kDram) -
           component(energy::comp::kLinkLlcDram);
}

std::string
RunResult::toJson(bool include_perf) const
{
    std::ostringstream os;
    os << "{\"workload\":\"" << jsonEscape(workload) << '"'
       << ",\"system\":\"" << systemKindName(kind) << '"';
    putUint(os, "totalCycles", totalCycles);
    putUint(os, "accelCycles", accelCycles);
    putUint(os, "dmaCycles", dmaCycles);
    putMap(os, "energyPj", energyPj);
    putMap(os, "funcCycles", funcCycles);
    os << ",\"invocationCycles\":[";
    for (std::size_t i = 0; i < invocationCycles.size(); ++i)
        os << (i ? "," : "") << invocationCycles[i];
    os << ']';
    putMap(os, "funcEnergyPj", funcEnergyPj);
    putUint(os, "l0xL1xCtrlMsgs", l0xL1xCtrlMsgs);
    putUint(os, "l0xL1xDataMsgs", l0xL1xDataMsgs);
    putUint(os, "l0xL1xFlits", l0xL1xFlits);
    putUint(os, "l1xL2CtrlMsgs", l1xL2CtrlMsgs);
    putUint(os, "l1xL2DataMsgs", l1xL2DataMsgs);
    putUint(os, "l0xL0xDataMsgs", l0xL0xDataMsgs);
    putUint(os, "axTlbLookups", axTlbLookups);
    putUint(os, "axRmapLookups", axRmapLookups);
    putUint(os, "fwdsToTile", fwdsToTile);
    putUint(os, "dmaOps", dmaOps);
    putUint(os, "dmaBytes", dmaBytes);
    putUint(os, "workingSetBytes", workingSetBytes);
    putUint(os, "l0xFills", l0xFills);
    putUint(os, "l0xWritebacks", l0xWritebacks);
    putUint(os, "l0xForwards", l0xForwards);
    putUint(os, "l1xHits", l1xHits);
    putUint(os, "l1xMisses", l1xMisses);
    // AUTO-mode block: only present when the orchestrator ran, so
    // every static kind's JSON is byte-identical to pre-AUTO output.
    if (!modeInvocations.empty()) {
        putUint(os, "modeSwitches", modeSwitches);
        putMap(os, "modeInvocations", modeInvocations);
    }
    // Host wall-clock data is nondeterministic, so it only appears
    // when explicitly requested; default output stays byte-identical
    // to what it was before perf instrumentation existed.
    // Telemetry blocks only appear when the run enabled them, so the
    // default report is byte-identical to a telemetry-free build.
    if (metrics && !metrics->empty()) {
        os << ",\"metrics\":";
        obs::writeSeriesJson(os, *metrics);
    }
    if (!latency.empty()) {
        os << ",\"latency\":";
        obs::writeLatencyJson(os, latency);
    }
    if (include_perf && perf) {
        os << ",\"perf\":{\"hostSeconds\":";
        putDouble(os, perf->hostSeconds);
        os << ",\"events\":" << perf->events
           << ",\"eventsPerSecond\":";
        putDouble(os, perf->eventsPerSecond);
        os << '}';
    }
    // Only failed runs carry the error object, keeping healthy
    // output byte-identical to pre-hardening reports.
    if (error)
        os << ",\"error\":" << error->toJson();
    os << '}';
    return os.str();
}

namespace
{

/** Result-blob envelope magic ("Fusion RESult"). */
constexpr std::string_view kResultMagic = "FRES";

/** Decode bound on container sizes: a corrupted count must not
 *  allocate unbounded memory even if it slipped past the envelope
 *  hash (it cannot, but defense in depth is cheap). */
constexpr std::uint64_t kMaxResultElems = 1ull << 24;

void
putMapWire(wire::Writer &w, const std::map<std::string, double> &m)
{
    w.u64(m.size());
    for (const auto &[k, v] : m) {
        w.str(k);
        w.f64(v);
    }
}

void
putMapWire(wire::Writer &w,
           const std::map<std::string, std::uint64_t> &m)
{
    w.u64(m.size());
    for (const auto &[k, v] : m) {
        w.str(k);
        w.u64(v);
    }
}

bool
getMapWire(wire::Reader &r, std::map<std::string, double> &m)
{
    std::uint64_t n;
    if (!r.u64(n) || n > kMaxResultElems)
        return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string k;
        double v;
        if (!r.str(k) || !r.f64(v))
            return false;
        m.emplace(std::move(k), v);
    }
    return true;
}

bool
getMapWire(wire::Reader &r, std::map<std::string, std::uint64_t> &m)
{
    std::uint64_t n;
    if (!r.u64(n) || n > kMaxResultElems)
        return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string k;
        std::uint64_t v;
        if (!r.str(k) || !r.u64(v))
            return false;
        m.emplace(std::move(k), v);
    }
    return true;
}

} // namespace

std::string
serializeResult(const RunResult &r)
{
    wire::Writer w;
    w.str(r.workload);
    w.u64(static_cast<std::uint64_t>(r.kind));
    w.u64(r.totalCycles);
    w.u64(r.accelCycles);
    w.u64(r.dmaCycles);
    putMapWire(w, r.energyPj);
    putMapWire(w, r.funcCycles);
    w.u64(r.invocationCycles.size());
    for (std::uint64_t c : r.invocationCycles)
        w.u64(c);
    putMapWire(w, r.funcEnergyPj);
    w.u64(r.l0xL1xCtrlMsgs);
    w.u64(r.l0xL1xDataMsgs);
    w.u64(r.l0xL1xFlits);
    w.u64(r.l1xL2CtrlMsgs);
    w.u64(r.l1xL2DataMsgs);
    w.u64(r.l0xL0xDataMsgs);
    w.u64(r.axTlbLookups);
    w.u64(r.axRmapLookups);
    w.u64(r.fwdsToTile);
    w.u64(r.dmaOps);
    w.u64(r.dmaBytes);
    w.u64(r.workingSetBytes);
    w.u64(r.l0xFills);
    w.u64(r.l0xWritebacks);
    w.u64(r.l0xForwards);
    w.u64(r.l1xHits);
    w.u64(r.l1xMisses);
    w.u64(r.modeSwitches);
    putMapWire(w, r.modeInvocations);
    // Wall-clock perf of the run that produced the entry. Stored so
    // a warm --json report (includePerf) stays byte-identical to the
    // cold report it was cached from; two *cold* runs differ here
    // anyway, so serving the recorded timing is the honest choice.
    w.boolean(r.perf.has_value());
    if (r.perf) {
        w.f64(r.perf->hostSeconds);
        w.u64(r.perf->events);
        w.f64(r.perf->eventsPerSecond);
    }
    return wire::wrapPayload(kResultMagic, kResultBlobVersion,
                             w.bytes());
}

bool
deserializeResult(std::string_view bytes, RunResult &out,
                  std::string *err)
{
    auto fail = [&](const char *why) {
        if (err)
            *err = why;
        return false;
    };
    std::string_view payload;
    if (!wire::unwrapPayload(kResultMagic, kResultBlobVersion, bytes,
                             payload, err))
        return false;
    wire::Reader r(payload);
    RunResult res;
    std::uint64_t kind;
    if (!r.str(res.workload) || !r.u64(kind))
        return fail("truncated result header");
    if (kind > static_cast<std::uint64_t>(SystemKind::Auto))
        return fail("result kind out of range");
    res.kind = static_cast<SystemKind>(kind);
    if (!r.u64(res.totalCycles) || !r.u64(res.accelCycles) ||
        !r.u64(res.dmaCycles))
        return fail("truncated result cycles");
    if (!getMapWire(r, res.energyPj) ||
        !getMapWire(r, res.funcCycles))
        return fail("truncated result maps");
    std::uint64_t nInv;
    if (!r.u64(nInv) || nInv > kMaxResultElems)
        return fail("bad invocation count");
    res.invocationCycles.reserve(static_cast<std::size_t>(nInv));
    for (std::uint64_t i = 0; i < nInv; ++i) {
        std::uint64_t c;
        if (!r.u64(c))
            return fail("truncated invocation cycles");
        res.invocationCycles.push_back(c);
    }
    if (!getMapWire(r, res.funcEnergyPj))
        return fail("truncated funcEnergyPj");
    if (!r.u64(res.l0xL1xCtrlMsgs) || !r.u64(res.l0xL1xDataMsgs) ||
        !r.u64(res.l0xL1xFlits) || !r.u64(res.l1xL2CtrlMsgs) ||
        !r.u64(res.l1xL2DataMsgs) || !r.u64(res.l0xL0xDataMsgs) ||
        !r.u64(res.axTlbLookups) || !r.u64(res.axRmapLookups) ||
        !r.u64(res.fwdsToTile) || !r.u64(res.dmaOps) ||
        !r.u64(res.dmaBytes) || !r.u64(res.workingSetBytes) ||
        !r.u64(res.l0xFills) || !r.u64(res.l0xWritebacks) ||
        !r.u64(res.l0xForwards) || !r.u64(res.l1xHits) ||
        !r.u64(res.l1xMisses))
        return fail("truncated result counters");
    if (!r.u64(res.modeSwitches) ||
        !getMapWire(r, res.modeInvocations))
        return fail("truncated mode block");
    bool hasPerf;
    if (!r.boolean(hasPerf))
        return fail("truncated perf flag");
    if (hasPerf) {
        RunPerf p;
        if (!r.f64(p.hostSeconds) || !r.u64(p.events) ||
            !r.f64(p.eventsPerSecond))
            return fail("truncated perf block");
        res.perf = p;
    }
    if (!r.done())
        return fail("trailing bytes in result payload");
    out = std::move(res);
    return true;
}

} // namespace fusion::core
