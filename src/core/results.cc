/**
 * @file
 * RunResult aggregate helpers and JSON serialization.
 */

#include "core/results.hh"

#include <cstdio>
#include <sstream>

#include "energy/energy_ledger.hh"

namespace fusion::core
{

namespace
{

/** Escape a string for a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Shortest round-trippable decimal rendering of a double. */
void
putDouble(std::ostream &os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
putMap(std::ostream &os, const char *key,
       const std::map<std::string, double> &m)
{
    os << ",\"" << key << "\":{";
    bool first = true;
    for (const auto &[k, v] : m) {
        os << (first ? "" : ",") << '"' << jsonEscape(k) << "\":";
        putDouble(os, v);
        first = false;
    }
    os << '}';
}

void
putMap(std::ostream &os, const char *key,
       const std::map<std::string, std::uint64_t> &m)
{
    os << ",\"" << key << "\":{";
    bool first = true;
    for (const auto &[k, v] : m) {
        os << (first ? "" : ",") << '"' << jsonEscape(k)
           << "\":" << v;
        first = false;
    }
    os << '}';
}

void
putUint(std::ostream &os, const char *key, std::uint64_t v)
{
    os << ",\"" << key << "\":" << v;
}

} // namespace

double
RunResult::component(const std::string &name) const
{
    auto it = energyPj.find(name);
    return it == energyPj.end() ? 0.0 : it->second;
}

double
RunResult::axcCachePj() const
{
    return component(energy::comp::kL0x) +
           component(energy::comp::kScratchpad) +
           component(energy::comp::kL1x);
}

double
RunResult::axcLinkPj() const
{
    return component(energy::comp::kLinkL0xL1xMsg) +
           component(energy::comp::kLinkL0xL1xData) +
           component(energy::comp::kLinkL0xL0x);
}

double
RunResult::totalPj() const
{
    double t = 0.0;
    for (const auto &[k, v] : energyPj)
        t += v;
    return t;
}

double
RunResult::hierarchyPj() const
{
    return totalPj() - component(energy::comp::kDram) -
           component(energy::comp::kLinkLlcDram);
}

std::string
RunResult::toJson(bool include_perf) const
{
    std::ostringstream os;
    os << "{\"workload\":\"" << jsonEscape(workload) << '"'
       << ",\"system\":\"" << systemKindName(kind) << '"';
    putUint(os, "totalCycles", totalCycles);
    putUint(os, "accelCycles", accelCycles);
    putUint(os, "dmaCycles", dmaCycles);
    putMap(os, "energyPj", energyPj);
    putMap(os, "funcCycles", funcCycles);
    os << ",\"invocationCycles\":[";
    for (std::size_t i = 0; i < invocationCycles.size(); ++i)
        os << (i ? "," : "") << invocationCycles[i];
    os << ']';
    putMap(os, "funcEnergyPj", funcEnergyPj);
    putUint(os, "l0xL1xCtrlMsgs", l0xL1xCtrlMsgs);
    putUint(os, "l0xL1xDataMsgs", l0xL1xDataMsgs);
    putUint(os, "l0xL1xFlits", l0xL1xFlits);
    putUint(os, "l1xL2CtrlMsgs", l1xL2CtrlMsgs);
    putUint(os, "l1xL2DataMsgs", l1xL2DataMsgs);
    putUint(os, "l0xL0xDataMsgs", l0xL0xDataMsgs);
    putUint(os, "axTlbLookups", axTlbLookups);
    putUint(os, "axRmapLookups", axRmapLookups);
    putUint(os, "fwdsToTile", fwdsToTile);
    putUint(os, "dmaOps", dmaOps);
    putUint(os, "dmaBytes", dmaBytes);
    putUint(os, "workingSetBytes", workingSetBytes);
    putUint(os, "l0xFills", l0xFills);
    putUint(os, "l0xWritebacks", l0xWritebacks);
    putUint(os, "l0xForwards", l0xForwards);
    putUint(os, "l1xHits", l1xHits);
    putUint(os, "l1xMisses", l1xMisses);
    // AUTO-mode block: only present when the orchestrator ran, so
    // every static kind's JSON is byte-identical to pre-AUTO output.
    if (!modeInvocations.empty()) {
        putUint(os, "modeSwitches", modeSwitches);
        putMap(os, "modeInvocations", modeInvocations);
    }
    // Host wall-clock data is nondeterministic, so it only appears
    // when explicitly requested; default output stays byte-identical
    // to what it was before perf instrumentation existed.
    // Telemetry blocks only appear when the run enabled them, so the
    // default report is byte-identical to a telemetry-free build.
    if (metrics && !metrics->empty()) {
        os << ",\"metrics\":";
        obs::writeSeriesJson(os, *metrics);
    }
    if (!latency.empty()) {
        os << ",\"latency\":";
        obs::writeLatencyJson(os, latency);
    }
    if (include_perf && perf) {
        os << ",\"perf\":{\"hostSeconds\":";
        putDouble(os, perf->hostSeconds);
        os << ",\"events\":" << perf->events
           << ",\"eventsPerSecond\":";
        putDouble(os, perf->eventsPerSecond);
        os << '}';
    }
    // Only failed runs carry the error object, keeping healthy
    // output byte-identical to pre-hardening reports.
    if (error)
        os << ",\"error\":" << error->toJson();
    os << '}';
    return os.str();
}

} // namespace fusion::core
