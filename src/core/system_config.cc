#include "core/system_config.hh"

namespace fusion::core
{

const char *
systemKindShortName(SystemKind k)
{
    switch (k) {
      case SystemKind::Scratch:
        return "SC";
      case SystemKind::Shared:
        return "SH";
      case SystemKind::Fusion:
        return "FU";
      case SystemKind::FusionDx:
        return "FU-Dx";
      case SystemKind::FusionMesi:
        return "FU-M";
    }
    return "?";
}

const char *
systemKindName(SystemKind k)
{
    switch (k) {
      case SystemKind::Scratch:
        return "SCRATCH";
      case SystemKind::Shared:
        return "SHARED";
      case SystemKind::Fusion:
        return "FUSION";
      case SystemKind::FusionDx:
        return "FUSION-Dx";
      case SystemKind::FusionMesi:
        return "FUSION-MESI";
    }
    return "?";
}

SystemConfig
SystemConfig::paperDefault(SystemKind kind)
{
    SystemConfig c;
    c.kind = kind;
    return c;
}

SystemConfig
SystemConfig::axcLarge(SystemKind kind)
{
    SystemConfig c;
    c.kind = kind;
    c.scratchpadBytes = 8 * 1024;
    c.l0xBytes = 8 * 1024;
    c.l1xBytes = 256 * 1024;
    return c;
}

} // namespace fusion::core
