#include "core/system_config.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>
#include <type_traits>

namespace fusion::core
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

const char *
systemKindShortName(SystemKind k)
{
    switch (k) {
      case SystemKind::Scratch:
        return "SC";
      case SystemKind::Shared:
        return "SH";
      case SystemKind::Fusion:
        return "FU";
      case SystemKind::FusionDx:
        return "FU-Dx";
      case SystemKind::FusionMesi:
        return "FU-M";
      case SystemKind::Auto:
        return "AU";
    }
    return "?";
}

const char *
systemKindName(SystemKind k)
{
    switch (k) {
      case SystemKind::Scratch:
        return "SCRATCH";
      case SystemKind::Shared:
        return "SHARED";
      case SystemKind::Fusion:
        return "FUSION";
      case SystemKind::FusionDx:
        return "FUSION-Dx";
      case SystemKind::FusionMesi:
        return "FUSION-MESI";
      case SystemKind::Auto:
        return "AUTO";
    }
    return "?";
}

const char *
systemKindCliName(SystemKind k)
{
    switch (k) {
      case SystemKind::Scratch:
        return "scratch";
      case SystemKind::Shared:
        return "shared";
      case SystemKind::Fusion:
        return "fusion";
      case SystemKind::FusionDx:
        return "fusion-dx";
      case SystemKind::FusionMesi:
        return "fusion-mesi";
      case SystemKind::Auto:
        return "auto";
    }
    return "?";
}

std::optional<SystemKind>
parseSystemKind(std::string_view name)
{
    std::string s(name);
    std::transform(s.begin(), s.end(), s.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    constexpr SystemKind kAll[] = {
        SystemKind::Scratch,  SystemKind::Shared,
        SystemKind::Fusion,   SystemKind::FusionDx,
        SystemKind::FusionMesi, SystemKind::Auto};
    auto lower = [](const char *cs) {
        std::string out(cs);
        std::transform(out.begin(), out.end(), out.begin(),
                       [](char c) {
                           return static_cast<char>(std::tolower(
                               static_cast<unsigned char>(c)));
                       });
        return out;
    };
    for (SystemKind k : kAll) {
        if (s == systemKindCliName(k) ||
            s == lower(systemKindShortName(k)) ||
            s == lower(systemKindName(k)))
            return k;
    }
    return std::nullopt;
}

std::vector<std::string>
SystemConfig::validate() const
{
    std::vector<std::string> errs;
    auto err = [&errs](auto &&...parts) {
        std::ostringstream os;
        (os << ... << parts);
        errs.push_back(os.str());
    };

    // A cache must be a power-of-two number of whole lines so set
    // indexing works, and hold at least one full set.
    auto checkCache = [&](const char *name, std::uint64_t bytes,
                          std::uint32_t assoc, std::uint32_t banks) {
        if (!isPow2(bytes))
            err(name, " capacity must be a power of two, got ",
                bytes, " bytes");
        if (assoc == 0)
            err(name, " associativity must be nonzero");
        if (banks == 0)
            err(name, " bank count must be nonzero");
        if (banks != 0 && !isPow2(banks))
            err(name, " bank count must be a power of two, got ",
                banks);
        if (assoc != 0 &&
            bytes < static_cast<std::uint64_t>(assoc) * kLineBytes)
            err(name, " capacity ", bytes, " B cannot hold one ",
                assoc, "-way set of ", kLineBytes, " B lines");
    };
    checkCache("L0X", l0xBytes, l0xAssoc, 1);
    checkCache("L1X", l1xBytes, l1xAssoc, l1xBanks);
    checkCache("host L1", hostL1Bytes, hostL1Assoc, 1);
    checkCache("LLC", llc.capacityBytes, llc.assoc, llc.nucaBanks);

    if (!isPow2(scratchpadBytes))
        err("scratchpad capacity must be a power of two, got ",
            scratchpadBytes, " bytes");
    if (scratchpadBytes < kLineBytes)
        err("scratchpad capacity ", scratchpadBytes,
            " B is smaller than one ", kLineBytes, " B line");

    if (numTiles == 0)
        err("numTiles must be nonzero");
    if (shardDomains == 0)
        err("shardDomains must be nonzero (1 = serial kernel)");
    if (datapathWidth == 0)
        err("datapathWidth must be nonzero");
    if (accelStoreBuffer == 0)
        err("accelStoreBuffer must be nonzero");
    if (dmaMaxOutstanding == 0)
        err("dmaMaxOutstanding must be nonzero");

    if (dram.channels == 0)
        err("DRAM channel count must be nonzero");
    if (dram.cmdQueueDepth == 0)
        err("DRAM command queue depth must be nonzero");
    if (hostCore.issueWidth == 0)
        err("host core issue width must be nonzero");
    if (hostCore.maxOutstanding == 0)
        err("host core outstanding-load limit must be nonzero");
    if (hostCore.storeQueue == 0)
        err("host core store queue must be nonzero");

    // Orchestrator knobs (AUTO mode only; harmless but checked
    // regardless so a bad sweep axis fails loudly).
    if (orchestrator.epsilon < 0.0 || orchestrator.epsilon > 1.0)
        err("orchestrator epsilon must be in [0, 1], got ",
            orchestrator.epsilon);
    if (orchestrator.minDwell == 0)
        err("orchestrator minDwell must be nonzero");
    if (orchestrator.staticMode == SystemKind::Auto)
        err("orchestrator staticMode must be a static system kind");
    if (orchestrator.switchPjPerLine < 0.0)
        err("orchestrator switchPjPerLine must be non-negative");
    if (kind == SystemKind::Auto && overlapInvocations)
        err("AUTO mode runs invocations serially; "
            "overlapInvocations is not supported");

    return errs;
}

namespace
{

/** Field-order FNV-1a mixer for canonicalHash(). */
class ConfigHasher
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _h ^= (v >> (8 * i)) & 0xff;
            _h *= 0x100000001b3ull;
        }
    }

    void
    mix(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    void mix(bool v) { mix(std::uint64_t{v ? 1u : 0u}); }

    template <typename E>
    std::enable_if_t<std::is_enum_v<E>>
    mix(E v)
    {
        mix(static_cast<std::uint64_t>(v));
    }

    std::uint64_t digest() const { return _h; }

  private:
    std::uint64_t _h = 0xcbf29ce484222325ull;
};

} // namespace

std::uint64_t
SystemConfig::canonicalHash() const
{
    // Fixed field order; append-only. Any semantic change here must
    // bump kConfigHashVersion (the very first value mixed) so old
    // result-cache entries miss instead of aliasing.
    ConfigHasher h;
    h.mix(std::uint64_t{kConfigHashVersion});
    h.mix(kind);
    h.mix(scratchpadBytes);
    h.mix(l0xBytes);
    h.mix(std::uint64_t{l0xAssoc});
    h.mix(l0xRepl);
    h.mix(l1xBytes);
    h.mix(std::uint64_t{l1xAssoc});
    h.mix(std::uint64_t{l1xBanks});
    h.mix(l0xWriteThrough);
    h.mix(llc.capacityBytes);
    h.mix(std::uint64_t{llc.assoc});
    h.mix(std::uint64_t{llc.nucaBanks});
    h.mix(std::uint64_t{llc.bankLatency});
    h.mix(std::uint64_t{llc.hopLatency});
    h.mix(std::uint64_t{dram.channels});
    h.mix(std::uint64_t{dram.cmdQueueDepth});
    h.mix(std::uint64_t{dram.rowHitLatency});
    h.mix(std::uint64_t{dram.rowMissLatency});
    h.mix(std::uint64_t{dram.burstCycles});
    h.mix(std::uint64_t{dram.rowBytes});
    h.mix(dram.accessPj);
    h.mix(std::uint64_t{hostCore.issueWidth});
    h.mix(std::uint64_t{hostCore.maxOutstanding});
    h.mix(std::uint64_t{hostCore.storeQueue});
    h.mix(hostL1Bytes);
    h.mix(std::uint64_t{hostL1Assoc});
    h.mix(std::uint64_t{datapathWidth});
    h.mix(std::uint64_t{accelStoreBuffer});
    h.mix(overlapInvocations);
    h.mix(std::uint64_t{numTiles});
    h.mix(std::uint64_t{dmaMaxOutstanding});
    // Hardening: watchdog budgets never change healthy output, but a
    // tripped budget or an armed fault does — and a guarded run must
    // never be served from an unguarded run's cache entry (or vice
    // versa), so every guard knob participates.
    h.mix(std::uint64_t{guard.maxCycles});
    h.mix(guard.maxWallMs);
    h.mix(std::uint64_t{guard.noProgressTicks});
    h.mix(std::uint64_t{guard.invariantPeriod});
    h.mix(guard.invariantsAtEnd);
    h.mix(guard.fault.kind);
    h.mix(guard.fault.triggerAfter);
    h.mix(std::uint64_t{guard.fault.delay});
    h.mix(guard.schedule.seed);
    h.mix(std::uint64_t{guard.schedule.faults.size()});
    for (const guard::ArmedFault &f : guard.schedule.faults) {
        h.mix(f.kind);
        h.mix(f.triggerAfter);
        h.mix(std::uint64_t{f.delay});
        h.mix(f.probability);
    }
    // Telemetry knobs change the serialized RunResult (metrics,
    // latency, spans), so they are part of the identity too.
    h.mix(obs.trace);
    h.mix(std::uint64_t{obs.traceKindMask});
    h.mix(std::uint64_t{obs.traceLimit});
    h.mix(std::uint64_t{obs.metricsInterval});
    h.mix(orchestrator.policy);
    h.mix(orchestrator.staticMode);
    h.mix(orchestrator.epsilon);
    h.mix(orchestrator.rngSeed);
    h.mix(std::uint64_t{orchestrator.minDwell});
    h.mix(std::uint64_t{orchestrator.switchFixedCycles});
    h.mix(std::uint64_t{orchestrator.switchCyclesPerLine});
    h.mix(orchestrator.switchPjPerLine);
    h.mix(orchestrator.dxForwardFraction);
    h.mix(orchestrator.scratchFootprintRatio);
    h.mix(std::uint64_t{shardDomains});
    return h.digest();
}

SystemConfig
SystemConfig::preset(Preset preset, SystemKind kind)
{
    SystemConfig c;
    c.kind = kind;
    switch (preset) {
      case Preset::Paper:
        break;
      case Preset::AxcLarge:
        c.scratchpadBytes = 8 * 1024;
        c.l0xBytes = 8 * 1024;
        c.l1xBytes = 256 * 1024;
        break;
    }
    return c;
}

const char *
presetName(SystemConfig::Preset p)
{
    switch (p) {
      case SystemConfig::Preset::Paper:
        return "paper";
      case SystemConfig::Preset::AxcLarge:
        return "axc-large";
    }
    return "?";
}

} // namespace fusion::core
