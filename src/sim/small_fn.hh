/**
 * @file
 * SmallFn: the allocation-free move-only closure used on every
 * transaction path in the simulator.
 *
 * std::function pays a heap allocation for any capture set past its
 * tiny SSO buffer (16 bytes on the common ABIs), and every
 * continuation in this simulator captures at least a component
 * pointer plus a moved-in downstream continuation — so the old
 * std::function callback types put one allocator round-trip on the
 * hot path of every cache transaction (lease grants, MSHR targets,
 * forwarded-request completions, DMA line callbacks).
 *
 * SmallFn<R(Args...)> generalizes PR 3's InlineEvent (the event
 * queue's void() closure box) to arbitrary signatures: kInlineBytes
 * of in-object storage sized for the simulator's common capture sets
 * (component pointer + address + flags + a moved-in continuation).
 * Closures that fit are constructed directly in the buffer and never
 * touch the allocator. Oversized closures fall back to a per-thread
 * slab freelist of fixed-size blocks, so even a fat capture (a
 * continuation chaining two other SmallFns) costs a pointer pop
 * instead of a malloc once the simulation reaches steady state.
 *
 * The type is deliberately *not* a general std::function
 * replacement: no copy, no target(), no allocators — exactly what a
 * fire-once continuation needs and nothing the hot path has to pay
 * for.
 */

#ifndef FUSION_SIM_SMALL_FN_HH
#define FUSION_SIM_SMALL_FN_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace fusion
{

namespace detail
{

/** Block size of the oversized-closure slab (covers every capture
 *  set in the tree today; larger ones use plain new/delete). */
constexpr std::size_t kEventSlabBytes = 256;

struct EventSlabNode
{
    EventSlabNode *next;
};

/**
 * Per-thread freelist. Each simulated system runs entirely on one
 * thread (the sweep engine gives every job its own worker), so a
 * thread-local list needs no locks; a block freed on a different
 * thread than it was allocated on simply migrates lists, which is
 * still safe. The destructor hands the retained blocks back at
 * thread exit — sweep workers are short-lived, and without it every
 * worker would strand its slab high-water mark (LeakSanitizer
 * flags exactly that under -DFUSION_ASAN=ON). Blocks still owned by
 * live SmallFns at that point are freed later by whichever thread
 * destroys them.
 */
struct EventSlab
{
    EventSlabNode *free = nullptr;

    ~EventSlab()
    {
        while (EventSlabNode *n = free) {
            free = n->next;
            ::operator delete(n);
        }
    }
};

inline thread_local EventSlab eventSlab;

inline void *
eventSlabAlloc(std::size_t bytes)
{
    if (bytes <= kEventSlabBytes) {
        if (EventSlabNode *n = eventSlab.free) {
            eventSlab.free = n->next;
            return n;
        }
        return ::operator new(kEventSlabBytes);
    }
    return ::operator new(bytes);
}

inline void
eventSlabRelease(void *p, std::size_t bytes)
{
    if (bytes <= kEventSlabBytes) {
        auto *n = static_cast<EventSlabNode *>(p);
        n->next = eventSlab.free;
        eventSlab.free = n;
        return;
    }
    ::operator delete(p);
}

} // namespace detail

namespace sim
{

template <typename Signature>
class SmallFn;

/** Move-only, small-buffer-optimized R(Args...) closure. */
template <typename R, typename... Args>
class SmallFn<R(Args...)>
{
  public:
    /** In-object closure storage. 64 bytes holds a this-pointer,
     *  a couple of scalars and one moved-in continuation, which
     *  covers the transaction hot paths in l0x/l1x/llc/host_l1. */
    static constexpr std::size_t kInlineBytes = 64;

    SmallFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &,
                                        Args...>>>
    SmallFn(F &&f) // NOLINT: implicit like std::function
    {
        emplace(std::forward<F>(f));
    }

    SmallFn(SmallFn &&other) noexcept : _ops(other._ops)
    {
        if (_ops) {
            relocateFrom(other);
            other._ops = nullptr;
        }
    }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            _ops = other._ops;
            if (_ops) {
                relocateFrom(other);
                other._ops = nullptr;
            }
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    R
    operator()(Args... args)
    {
        return _ops->invoke(_buf, std::forward<Args>(args)...);
    }

    /** Destroy the held closure (no-op when empty). */
    void
    reset() noexcept
    {
        if (_ops) {
            if (!_ops->trivialDestroy)
                _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

    /** True when the closure lives in the inline buffer (tests). */
    bool
    isInline() const noexcept
    {
        return _ops != nullptr && _ops->inlineStored;
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool inlineStored;
        /** Relocation is equivalent to copying the raw buffer: true
         *  for trivially copyable inline closures (the common case —
         *  component pointer + scalars) and for the heap path (the
         *  buffer holds only the block pointer). Moves then run a
         *  fixed-size memcpy instead of an indirect call. */
        bool trivialRelocate;
        /** Destruction is a no-op (trivially destructible inline
         *  closures), so the destructor skips the indirect call. */
        bool trivialDestroy;
    };

    /** Move the closure payload of @p other (same _ops) into _buf. */
    void
    relocateFrom(SmallFn &other) noexcept
    {
        // The fixed-size copy deliberately reads the buffer past the
        // closure's own footprint — a constant-length memcpy beats a
        // length-dispatched one and the tail bytes are never
        // interpreted. GCC's flow analysis flags those tail reads.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
        if (_ops->trivialRelocate)
            std::memcpy(_buf, other._buf, kInlineBytes);
        else
            _ops->relocate(_buf, other._buf);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    }

    template <typename Fn>
    static constexpr bool kFitsInline =
        sizeof(Fn) <= kInlineBytes &&
        alignof(Fn) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<Fn>;

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (kFitsInline<Fn>) {
            ::new (static_cast<void *>(_buf))
                Fn(std::forward<F>(f));
            static constexpr Ops ops = {
                [](void *p, Args &&...args) -> R {
                    return (*std::launder(
                        reinterpret_cast<Fn *>(p)))(
                        std::forward<Args>(args)...);
                },
                [](void *dst, void *src) noexcept {
                    Fn *s = std::launder(reinterpret_cast<Fn *>(src));
                    ::new (dst) Fn(std::move(*s));
                    s->~Fn();
                },
                [](void *p) noexcept {
                    std::launder(reinterpret_cast<Fn *>(p))->~Fn();
                },
                true,
                std::is_trivially_copyable_v<Fn>,
                std::is_trivially_destructible_v<Fn>,
            };
            _ops = &ops;
        } else {
            static_assert(alignof(Fn) <= alignof(std::max_align_t),
                          "over-aligned closures unsupported");
            void *mem = detail::eventSlabAlloc(sizeof(Fn));
            ::new (mem) Fn(std::forward<F>(f));
            *reinterpret_cast<void **>(_buf) = mem;
            static constexpr Ops ops = {
                [](void *p, Args &&...args) -> R {
                    return (**reinterpret_cast<Fn **>(p))(
                        std::forward<Args>(args)...);
                },
                [](void *dst, void *src) noexcept {
                    *reinterpret_cast<void **>(dst) =
                        *reinterpret_cast<void **>(src);
                },
                [](void *p) noexcept {
                    Fn *fn = *reinterpret_cast<Fn **>(p);
                    fn->~Fn();
                    detail::eventSlabRelease(fn, sizeof(Fn));
                },
                false,
                true,  // buffer holds just the block pointer
                false, // block must be released
            };
            _ops = &ops;
        }
    }

    const Ops *_ops = nullptr;
    alignas(std::max_align_t) unsigned char _buf[kInlineBytes];
};

} // namespace sim

} // namespace fusion

#endif // FUSION_SIM_SMALL_FN_HH
