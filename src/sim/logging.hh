/**
 * @file
 * Error/status reporting helpers, modelled after gem5's logging.hh.
 *
 * panic()  - an internal simulator invariant was violated; aborts.
 * fatal()  - the user supplied an impossible configuration; exits.
 * warn()   - something works but is suspicious.
 * inform() - plain status output.
 *
 * Debug tracing is category-based: enable categories by name via
 * Debug::enable() (or the FUSION_DEBUG environment variable, a
 * comma-separated list) and instrument code with DTRACE/DPRINTFN.
 */

#ifndef FUSION_SIM_LOGGING_HH
#define FUSION_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace fusion
{

namespace detail
{

/** Format the variadic tail into a string using iostreams. */
inline void
streamAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamAll(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    streamAll(os, rest...);
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Debug-trace category registry. */
class Debug
{
  public:
    /**
     * Categories instrumented in-tree; initFromEnvironment() warns
     * when FUSION_DEBUG names anything else. Keep in sync with the
     * DPRINTFN call sites.
     */
    static constexpr const char *kKnownCategories[] = {
        "ACC", "MESI", "OBS", "CACHE",
    };

    /** Enable one category by name ("ACC", "MESI", "OBS", ...). */
    static void enable(std::string_view category);
    /** Disable one category by name. */
    static void disable(std::string_view category);
    /** True if the category is enabled. */
    static bool enabled(std::string_view category);
    /** True if the category has an in-tree DPRINTFN site. */
    static bool isKnown(std::string_view category);
    /**
     * Parse FUSION_DEBUG from the environment: a comma-separated
     * category list. Entries are whitespace-trimmed; unknown names
     * warn (they still enable, for out-of-tree categories).
     */
    static void initFromEnvironment();
};

/** Emit a debug trace line if @p category is enabled. */
void debugPrint(std::string_view category, const std::string &msg);

} // namespace fusion

/** Abort: an internal invariant was violated (simulator bug). */
#define fusion_panic(...)                                                 \
    do {                                                                  \
        std::ostringstream os_;                                           \
        ::fusion::detail::streamAll(os_, __VA_ARGS__);                    \
        ::fusion::detail::panicImpl(__FILE__, __LINE__, os_.str());       \
    } while (0)

/** Exit: the simulation cannot continue due to user error. */
#define fusion_fatal(...)                                                 \
    do {                                                                  \
        std::ostringstream os_;                                           \
        ::fusion::detail::streamAll(os_, __VA_ARGS__);                    \
        ::fusion::detail::fatalImpl(__FILE__, __LINE__, os_.str());       \
    } while (0)

/** Non-fatal warning. */
#define fusion_warn(...)                                                  \
    do {                                                                  \
        std::ostringstream os_;                                           \
        ::fusion::detail::streamAll(os_, __VA_ARGS__);                    \
        ::fusion::detail::warnImpl(os_.str());                            \
    } while (0)

/** Status message. */
#define fusion_inform(...)                                                \
    do {                                                                  \
        std::ostringstream os_;                                           \
        ::fusion::detail::streamAll(os_, __VA_ARGS__);                    \
        ::fusion::detail::informImpl(os_.str());                          \
    } while (0)

/** Category-gated debug trace. */
#define DPRINTFN(category, ...)                                           \
    do {                                                                  \
        if (::fusion::Debug::enabled(category)) {                         \
            std::ostringstream os_;                                       \
            ::fusion::detail::streamAll(os_, __VA_ARGS__);                \
            ::fusion::debugPrint(category, os_.str());                    \
        }                                                                 \
    } while (0)

/** Assert an invariant with a formatted message on failure. */
#define fusion_assert(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            fusion_panic("assertion failed: " #cond " ", __VA_ARGS__);    \
        }                                                                 \
    } while (0)

#endif // FUSION_SIM_LOGGING_HH
