/**
 * @file
 * Fundamental simulation types shared by every FUSION module.
 *
 * The simulator is cycle-level: one Tick is one clock cycle of the
 * 2 GHz chip clock (host core, accelerator tile and uncore share one
 * clock domain, as in the paper's Table 2 configuration).
 */

#ifndef FUSION_SIM_TYPES_HH
#define FUSION_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace fusion
{

/** Simulated time, in clock cycles of the 2 GHz chip clock. */
using Tick = std::uint64_t;

/** A duration measured in clock cycles. */
using Cycles = std::uint64_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/**
 * A memory address. The accelerator tile operates on virtual
 * addresses; the host tile operates on physical addresses. Both are
 * carried in this type; the vm module performs the translation at the
 * tile boundary (Section 3.2, Virtual Memory).
 */
using Addr = std::uint64_t;

/** Identifier of an accelerator (AXC) within a tile. */
using AccelId = std::int32_t;

/** Identifier of an accelerated function within a workload. */
using FuncId = std::int32_t;

/** Process identifier used to tag L0X/L1X lines (Section 3.2). */
using Pid = std::int32_t;

/** Sentinel ids. */
constexpr AccelId kNoAccel = -1;
constexpr FuncId kNoFunc = -1;

/** Cache line size used throughout the chip (bytes). */
constexpr std::uint32_t kLineBytes = 64;

/** log2 of the cache line size. */
constexpr std::uint32_t kLineShift = 6;

/** Size of one interconnect flit in bytes (Section 5.3, Table 4). */
constexpr std::uint32_t kFlitBytes = 8;

/** Align an address down to its cache-line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Line number of an address (address divided by line size). */
constexpr Addr
lineNumber(Addr a)
{
    return a >> kLineShift;
}

/** Offset of an address within its cache line. */
constexpr std::uint32_t
lineOffset(Addr a)
{
    return static_cast<std::uint32_t>(a & (kLineBytes - 1));
}

} // namespace fusion

#endif // FUSION_SIM_TYPES_HH
