#include "sim/shard/router.hh"

#include <string>

namespace fusion::shard
{

Router::Router(SimContext &ctx, std::uint32_t domains) : _ctx(ctx)
{
    fusion_assert(domains >= 2,
                  "shard router needs >= 2 domains, got ", domains);
    for (std::uint32_t d = 0; d < domains; ++d) {
        Domain &dom = _domains.emplace_back();
        dom.id = d;
        dom.name = d == 0 ? "host" : "tiles" + std::to_string(d);
        dom.q.setSeqSource(&_seq);
    }
    // Per-domain visibility when the watchdog trips: one snapshot
    // line summarizing every domain's clock and backlog. Diagnostic
    // text only — never part of RunResult JSON.
    _ctx.guard.registerSnapshot("shard", [this] {
        guard::ComponentState st;
        std::string detail;
        for (const Domain &dom : _domains) {
            st.outstanding += dom.q.pending();
            if (!detail.empty())
                detail += ' ';
            detail += dom.name + "(now=" +
                      std::to_string(dom.q.now()) +
                      " pending=" + std::to_string(dom.q.pending()) +
                      " rx=" + std::to_string(dom.received) + ")";
        }
        st.detail = detail + " crossings=" +
                    std::to_string(_crossings);
        return st;
    });
    _ctx.eq.setShardRouter(this);
}

Router::~Router()
{
    _ctx.eq.setShardRouter(nullptr);
}

void
Router::setAccelDomain(std::uint32_t accel, DomainId d)
{
    fusion_assert(d < numDomains(),
                  "accel domain out of range: ", d);
    if (accel >= _accelDomain.size())
        _accelDomain.resize(accel + 1, 0);
    _accelDomain[accel] = d;
}

DomainId
Router::accelDomain(std::uint32_t accel) const
{
    return accel < _accelDomain.size() ? _accelDomain[accel] : 0;
}

void
Router::scheduleCross(DomainId dst, Tick when, Cycles latency,
                      EventFn &&fn)
{
    fusion_assert(dst < numDomains(),
                  "cross delivery to bad domain ", dst);
    fusion_assert(latency >= 1,
                  "zero-latency cross-domain edge breaks the "
                  "conservative lookahead window");
    ++_crossings;
    if (latency < _minCross)
        _minCross = latency;
    Domain &dom = _domains[dst];
    ++dom.received;
    dom.q.schedule(when, std::move(fn));
}

bool
Router::stepGlobal()
{
    DomainId best = kNoDomain;
    Tick bw = kTickNever;
    int bp = 0;
    std::uint64_t bs = 0;
    for (Domain &dom : _domains) {
        Tick w;
        int p;
        std::uint64_t s;
        if (!dom.q.peekHead(w, p, s))
            continue;
        if (best == kNoDomain || w < bw ||
            (w == bw && (p < bp || (p == bp && s < bs)))) {
            best = dom.id;
            bw = w;
            bp = p;
            bs = s;
        }
    }
    if (best == kNoDomain)
        return false;
    // Clock and current-domain update precede execution so that
    // now() inside the event reads the event's own tick — exactly
    // the serial queue's `_now = e.when` semantics.
    _current = best;
    _globalNow = bw;
    _domains[best].q.step();
    _current = 0;
    return true;
}

std::size_t
Router::totalPending() const
{
    std::size_t n = 0;
    for (const Domain &dom : _domains)
        n += dom.q.pending();
    return n;
}

std::uint64_t
Router::totalExecuted() const
{
    std::uint64_t n = 0;
    for (const Domain &dom : _domains)
        n += dom.q.executed();
    return n;
}

Tick
Router::headTick() const
{
    Tick t = kTickNever;
    for (const Domain &dom : _domains)
        t = std::min(t, dom.q.headTick());
    return t;
}

// ---- EventQueue facade bridges (declared in event_queue.hh) ----

void
routerSchedule(Router &r, Tick when, int pri, InlineEvent &&fn)
{
    // Domain-local clocks lag the global clock, so the domain
    // queue's own in-the-past assert is weaker than the serial
    // queue's. Re-impose the serial-strength check here.
    fusion_assert(when >= r.globalNow(),
                  "schedule in the past: when=", when,
                  " globalNow=", r.globalNow());
    r.domain(r.current())
        .q.schedule(when, std::move(fn),
                    static_cast<EventPriority>(pri));
}

Tick
routerNow(const Router &r)
{
    return r.globalNow();
}

Tick
routerHeadTick(const Router &r)
{
    return r.headTick();
}

std::size_t
routerPending(const Router &r)
{
    return r.totalPending();
}

std::uint64_t
routerExecuted(const Router &r)
{
    return r.totalExecuted();
}

bool
routerStep(Router &r)
{
    return r.stepGlobal();
}

} // namespace fusion::shard
