#include "sim/shard/scheduler.hh"

#include <algorithm>
#include <chrono>
#include <string>

#include "sim/guard/sim_error.hh"

namespace fusion::shard
{

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
elapsedMs(Clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - start)
            .count());
}

} // namespace

DomainScheduler::DomainScheduler(const Params &p) : _p(p)
{
    fusion_assert(_p.domains >= 1, "scheduler needs >= 1 domain");
    fusion_assert(_p.lookahead >= 1,
                  "conservative lookahead must be >= 1");
    for (std::uint32_t d = 0; d < _p.domains; ++d) {
        Domain &dom = _domains.emplace_back();
        dom.id = d;
        dom.name = d == 0 ? "host" : "dom" + std::to_string(d);
    }
    _mail.resize(static_cast<std::size_t>(_p.domains) * _p.domains);
    if (_p.traceWindows) {
        obs::ObsConfig ocfg;
        ocfg.traceLimit = _p.traceLimit;
        ocfg.traceKindMask =
            obs::spanKindBit(obs::SpanKind::ShardWindow);
        for (std::uint32_t d = 0; d < _p.domains; ++d) {
            auto t = std::make_unique<obs::SpanTracer>(ocfg);
            t->registerTrack(_domains[d].name);
            _tracers.push_back(std::move(t));
        }
    }
}

DomainScheduler::~DomainScheduler()
{
    stopWorkers();
}

std::uint64_t
DomainScheduler::totalExecuted() const
{
    std::uint64_t n = 0;
    for (const Domain &dom : _domains)
        n += dom.q.executed();
    return n;
}

std::vector<obs::SpanRecord>
DomainScheduler::mergedWindowSpans() const
{
    std::vector<const obs::SpanTracer *> parts;
    parts.reserve(_tracers.size());
    for (const auto &t : _tracers)
        parts.push_back(t.get());
    return obs::mergeSortedSpans(parts);
}

void
DomainScheduler::runOneDomain(DomainId d, Tick limit)
{
    Domain &dom = _domains[d];
    std::uint64_t before = dom.q.executed();
    Tick start = dom.q.headTick();
    dom.q.runUntil(limit);
    std::uint64_t ran = dom.q.executed() - before;
    if (ran == 0)
        return;
    ++dom.windows;
    if (!_tracers.empty())
        _tracers[d]->complete(0, obs::SpanKind::ShardWindow,
                              static_cast<Addr>(dom.windows), start,
                              dom.q.now());
}

void
DomainScheduler::runSolo(DomainId d)
{
    // Only one domain has pending work: run it on this thread,
    // window after window, without barriers. Windows of L ticks stay
    // safe even while the domain sends: a message sent at tick t
    // inside window [h, h + L - 1] arrives at t + delay >= h + L,
    // past the window — so the window never overruns a tick the
    // destination could have reacted to. We stop as soon as a send
    // happened (the destination now has work) or the queue drains.
    Domain &dom = _domains[d];
    std::uint64_t before = dom.q.executed();
    std::uint64_t sentBefore = dom.sent;
    Tick start = dom.q.headTick();
    while (dom.sent == sentBefore) {
        Tick h = dom.q.headTick();
        if (h == kTickNever)
            break;
        dom.q.runUntil(h + _p.lookahead - 1);
    }
    if (dom.q.executed() != before) {
        ++dom.windows;
        if (!_tracers.empty())
            _tracers[d]->complete(0, obs::SpanKind::ShardWindow,
                                  static_cast<Addr>(dom.windows),
                                  start, dom.q.now());
    }
    ++_totals.soloWindows;
}

void
DomainScheduler::drainMailboxes()
{
    _drain.clear();
    auto n = numDomains();
    for (DomainId src = 0; src < n; ++src) {
        for (DomainId dst = 0; dst < n; ++dst) {
            Mailbox &lane = _mail[src * n + dst];
            if (lane.empty())
                continue;
            _laneScratch.clear();
            lane.drainInto(_laneScratch);
            for (ShardMsg &m : _laneScratch)
                _drain.push_back(PendingMsg{dst, std::move(m)});
        }
    }
    if (_drain.empty())
        return;
    // The canonical merge: (tick, priority, source domain, seq).
    // Keys are unique, so this is a total order and the destination
    // queues see one deterministic delivery sequence regardless of
    // worker count or which thread ran which domain.
    std::sort(_drain.begin(), _drain.end(),
              [](const PendingMsg &a, const PendingMsg &b) {
                  return ShardMsgOrder{}(a.msg, b.msg);
              });
    for (PendingMsg &pm : _drain) {
        Domain &dom = _domains[pm.dst];
        fusion_assert(pm.msg.when > dom.q.now(),
                      "conservative window violated: delivery at ",
                      pm.msg.when, " but domain ", pm.dst,
                      " already at ", dom.q.now());
        dom.q.schedule(pm.msg.when, std::move(pm.msg.fn),
                       static_cast<EventPriority>(pm.msg.pri));
        ++dom.received;
        ++_totals.crossMessages;
    }
    _totals.maxDrainBatch =
        std::max(_totals.maxDrainBatch, _drain.size());
    _drain.clear();
}

void
DomainScheduler::startWorkers()
{
    std::size_t want = _p.workers;
    if (want == 0) {
        std::size_t hw = std::thread::hardware_concurrency();
        if (hw == 0)
            hw = 2;
        want = std::min<std::size_t>(_domains.size(), hw);
    }
    if (want <= 1 || _domains.size() <= 1)
        return; // caller's thread runs windows inline
    _threads.reserve(want);
    for (std::size_t i = 0; i < want; ++i)
        _threads.emplace_back([this] { workerMain(); });
}

void
DomainScheduler::stopWorkers()
{
    if (_threads.empty())
        return;
    {
        std::lock_guard<std::mutex> lk(_mu);
        _shutdown = true;
    }
    _cvWork.notify_all();
    for (auto &t : _threads)
        t.join();
    _threads.clear();
    _shutdown = false;
}

void
DomainScheduler::workerMain()
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(_mu);
            _cvWork.wait(lk, [&] {
                return _shutdown || _generation != seen;
            });
            if (_shutdown)
                return;
            seen = _generation;
        }
        while (true) {
            std::size_t d = _cursor.fetch_add(1);
            if (d >= _domains.size())
                break;
            runOneDomain(static_cast<DomainId>(d), _windowLimit);
        }
        {
            std::lock_guard<std::mutex> lk(_mu);
            if (--_working == 0)
                _cvDone.notify_one();
        }
    }
}

void
DomainScheduler::dispatchWindow(Tick limit)
{
    if (_threads.empty()) {
        for (DomainId d = 0; d < numDomains(); ++d)
            runOneDomain(d, limit);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(_mu);
        _windowLimit = limit;
        _cursor.store(0);
        _working = _threads.size();
        ++_generation;
    }
    _cvWork.notify_all();
    std::unique_lock<std::mutex> lk(_mu);
    _cvDone.wait(lk, [&] { return _working == 0; });
}

void
DomainScheduler::throwStuck(const char *what, Tick head)
{
    guard::SimError err;
    err.category = guard::ErrorCategory::NoProgress;
    err.component = "shard.scheduler";
    err.message = what;
    err.tick = head == kTickNever ? 0 : head;
    std::string diag;
    for (const Domain &dom : _domains) {
        diag += "  " + dom.name +
                ": now=" + std::to_string(dom.q.now()) +
                " pending=" + std::to_string(dom.q.pending()) +
                " sent=" + std::to_string(dom.sent) +
                " rx=" + std::to_string(dom.received) + "\n";
    }
    err.diagnostic = diag;
    throw guard::SimErrorException(std::move(err));
}

Tick
DomainScheduler::run()
{
    auto t_start = Clock::now();
    startWorkers();
    Tick lastHead = kTickNever;
    std::uint64_t stuck = 0;
    while (true) {
        Tick head = kTickNever;
        std::uint32_t busy = 0;
        DomainId solo = 0;
        for (Domain &dom : _domains) {
            Tick h = dom.q.headTick();
            if (h == kTickNever)
                continue;
            ++busy;
            solo = dom.id;
            head = std::min(head, h);
        }
        if (busy == 0)
            break; // mailboxes are always drained before this check
        if (busy == 1) {
            runSolo(solo);
        } else {
            ++_totals.windows;
            dispatchWindow(head + _p.lookahead - 1);
        }
        drainMailboxes();
        if (_p.maxWallMs != 0 && elapsedMs(t_start) > _p.maxWallMs) {
            guard::SimError err;
            err.category = guard::ErrorCategory::WallClock;
            err.component = "shard.scheduler";
            err.message = "wall-clock budget exceeded (" +
                          std::to_string(_p.maxWallMs) + " ms)";
            err.tick = head;
            throw guard::SimErrorException(std::move(err));
        }
        if (head == lastHead) {
            if (++stuck >= _p.stuckWindows)
                throwStuck("global head stuck across windows", head);
        } else {
            stuck = 0;
            lastHead = head;
        }
    }
    stopWorkers();
    Tick end = 0;
    for (const Domain &dom : _domains)
        end = std::max(end, dom.q.now());
    return end;
}

} // namespace fusion::shard
