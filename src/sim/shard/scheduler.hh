/**
 * @file
 * Conservative-lookahead parallel domain scheduler.
 *
 * Classic conservative PDES over the shard Domain partition: every
 * domain owns a private EventQueue, and the coordinator advances all
 * domains in lockstep *windows*. With L the minimum cross-domain
 * link latency (the lookahead) and H the global head tick, every
 * event in [H, H + L - 1] is safe to execute without seeing a
 * not-yet-sent cross-domain message: a message sent by an event at
 * tick t >= H arrives no earlier than t + L >= H + L, which is past
 * the window. So each window the workers run their claimed domains
 * with runUntil(H + L - 1), cross-domain sends go into (src, dst)
 * mailbox lanes, and at the window barrier the coordinator merges
 * all lanes in (tick, priority, source domain, sequence) order and
 * schedules them into the destination queues. The merge key is
 * total, per-domain execution is single-threaded, and the window
 * sequence is a pure function of queue state — so results are
 * deterministic for any worker count (anchored by the property
 * tests in tests/test_shard.cc).
 *
 * When only one domain has pending work the scheduler drops into a
 * solo fast path: that domain runs on the coordinator thread with a
 * dynamic limit of (earliest outgoing message + L - 1), which lets
 * serial phases (e.g. host-only setup) proceed at full speed with
 * no barrier churn.
 *
 * A per-domain watchdog runs at every barrier: a wall-clock budget
 * plus a stuck-window detector (global head not advancing while
 * work is pending), both throwing guard::SimErrorException with a
 * per-domain snapshot — see docs/HARDENING.md.
 */

#ifndef FUSION_SIM_SHARD_SCHEDULER_HH
#define FUSION_SIM_SHARD_SCHEDULER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/span_tracer.hh"
#include "sim/event_queue.hh"
#include "sim/shard/domain.hh"
#include "sim/shard/mailbox.hh"
#include "sim/types.hh"

namespace fusion::shard
{

/** Parallel conservative-window engine (see file header). */
class DomainScheduler
{
  public:
    struct Params
    {
        /** Number of domains (>= 1; 1 degenerates to serial). */
        std::uint32_t domains = 2;
        /** Conservative lookahead: minimum cross-domain latency.
         *  Cross sends with a smaller delay are rejected. */
        Cycles lookahead = 3;
        /** Worker threads; 0 = one per domain (capped at hardware
         *  concurrency), 1 = run windows on the caller's thread. */
        std::size_t workers = 0;
        /** Wall-clock budget for run() in ms (0 = unlimited). */
        std::uint64_t maxWallMs = 0;
        /** Barriers with no global-head progress before the stuck
         *  detector trips. */
        std::uint64_t stuckWindows = std::uint64_t{1} << 20;
        /** Record one ShardWindow span per (domain, window) into
         *  per-domain rings (merged at export). */
        bool traceWindows = false;
        /** Ring capacity per domain when tracing windows. */
        std::size_t traceLimit = 4096;
    };

    /** Engine-level counters (per-domain ones live on Domain). */
    struct Totals
    {
        std::uint64_t windows = 0;     ///< parallel windows run
        std::uint64_t soloWindows = 0; ///< solo fast-path stretches
        std::uint64_t crossMessages = 0;
        std::size_t maxDrainBatch = 0; ///< largest barrier merge
    };

    explicit DomainScheduler(const Params &p);
    ~DomainScheduler();

    DomainScheduler(const DomainScheduler &) = delete;
    DomainScheduler &operator=(const DomainScheduler &) = delete;

    std::uint32_t
    numDomains() const
    {
        return static_cast<std::uint32_t>(_domains.size());
    }

    Cycles lookahead() const { return _p.lookahead; }

    Domain &domain(DomainId d) { return _domains[d]; }
    const Domain &domain(DomainId d) const { return _domains[d]; }

    /** Domain @p d's queue: for setup-phase seeding and for
     *  domain-local scheduling from inside that domain's events. */
    EventQueue &queueOf(DomainId d) { return _domains[d].q; }

    /**
     * Cross-domain send from an event executing on domain @p src:
     * deliver @p fn on domain @p dst, @p delay ticks after src's
     * current tick. @p delay must be >= lookahead (the conservative
     * window depends on it). A same-domain send short-circuits to a
     * local scheduleIn — no mailbox, no barrier wait — which keeps
     * logical-topology workloads mappable onto fewer physical
     * domains.
     */
    template <typename F>
    void
    sendCross(DomainId src, DomainId dst, Cycles delay, F &&fn,
              EventPriority pri = EventPriority::Default)
    {
        fusion_assert(src < numDomains() && dst < numDomains(),
                      "sendCross: bad domain");
        Domain &s = _domains[src];
        if (src == dst) {
            s.q.scheduleIn(delay, std::forward<F>(fn), pri);
            return;
        }
        fusion_assert(delay >= _p.lookahead,
                      "cross-domain delay ", delay,
                      " below lookahead ", _p.lookahead);
        Tick when = s.q.now() + delay;
        _mail[src * numDomains() + dst].push(
            ShardMsg(when, static_cast<int>(pri), src, s.outSeq++,
                     EventFn(std::forward<F>(fn))));
        ++s.sent;
    }

    /**
     * Run windows until every domain queue and mailbox drains.
     * @return the maximum domain clock (= tick of the last event).
     */
    Tick run();

    const Totals &totals() const { return _totals; }

    /** Sum of executed events across domains. */
    std::uint64_t totalExecuted() const;

    /** Per-domain window spans merged in (begin, domain, seq) order
     *  (empty unless Params::traceWindows). */
    std::vector<obs::SpanRecord> mergedWindowSpans() const;

  private:
    void runSolo(DomainId d);
    void dispatchWindow(Tick limit);
    void runOneDomain(DomainId d, Tick limit);
    void drainMailboxes();
    void startWorkers();
    void stopWorkers();
    void workerMain();
    [[noreturn]] void throwStuck(const char *what, Tick head);

    Params _p;
    std::deque<Domain> _domains;
    std::vector<Mailbox> _mail; ///< lane (src, dst) = src * N + dst

    Totals _totals;

    /** Barrier drain scratch (coordinator thread only). */
    struct PendingMsg
    {
        DomainId dst;
        ShardMsg msg;
    };
    std::vector<PendingMsg> _drain;
    std::vector<ShardMsg> _laneScratch;

    /** Worker pool: generation-counted window barrier. Workers claim
     *  domains via the atomic cursor, run them to the window limit,
     *  and the last finisher wakes the coordinator. All non-atomic
     *  shared state (queues, mailboxes, the limit) is ordered by the
     *  mutex handoffs, so the engine is TSAN-clean by construction. */
    std::vector<std::thread> _threads;
    std::mutex _mu;
    std::condition_variable _cvWork;
    std::condition_variable _cvDone;
    std::uint64_t _generation = 0;
    std::size_t _working = 0;
    std::atomic<std::size_t> _cursor{0};
    Tick _windowLimit = 0;
    bool _shutdown = false;

    /** Per-domain window span rings (traceWindows). */
    std::vector<std::unique_ptr<obs::SpanTracer>> _tracers;
};

} // namespace fusion::shard

#endif // FUSION_SIM_SHARD_SCHEDULER_HH
