/**
 * @file
 * Ordered shard router: exact-order execution over per-domain
 * event queues.
 *
 * When a run is sharded (SystemConfig::shardDomains > 1), the system
 * facade EventQueue stops holding events itself and delegates to a
 * Router. The router owns one EventQueue per domain, points them all
 * at one shared sequence counter, and executes the globally least
 * (when, priority, sequence) event across all domains on each step.
 * That is by construction the same total order a single queue
 * produces — the proof is an induction on steps: the union of the
 * per-domain pending sets always equals the serial queue's pending
 * set with identical keys (scheduling happens inside events, which
 * run in the same order and draw sequence numbers from the shared
 * counter), and each step pops the global key minimum. Routing an
 * event to a different domain changes *which* queue holds it, never
 * its key, so a mis-partitioned component cannot perturb ordering —
 * it can only trip the cross-edge asserts. Serial and sharded runs
 * therefore produce byte-identical JSON (anchored by the
 * ShardDeterminism suite).
 *
 * What the ordered router buys, since it executes on one thread:
 * it validates the entire partitioning — domain assignment, the
 * cross-domain link edges, mailbox-equivalent routing, the lookahead
 * bound (minimum observed cross-edge latency) — under the full
 * protocol stack and the fault injector, while keeping the output
 * bit-reproducible. The threaded conservative-window engine
 * (shard::DomainScheduler) shares the Domain/merge-order machinery
 * and carries the speedup; see DESIGN.md §8 "Sharded kernel".
 */

#ifndef FUSION_SIM_SHARD_ROUTER_HH
#define FUSION_SIM_SHARD_ROUTER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/shard/domain.hh"
#include "sim/sim_context.hh"
#include "sim/types.hh"

namespace fusion::shard
{

/** Exact-order executor over per-domain queues (see file header). */
class Router
{
  public:
    /**
     * Create a router with @p domains domains (>= 2; domain 0 is the
     * host complex) and install it on @p ctx's facade queue. Install
     * happens here — before any component constructs — so events
     * scheduled from constructors already land in domain queues.
     */
    Router(SimContext &ctx, std::uint32_t domains);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    std::uint32_t numDomains() const
    {
        return static_cast<std::uint32_t>(_domains.size());
    }

    /** Domain whose event is currently executing (0 at rest). */
    DomainId current() const { return _current; }

    /** Global clock: tick of the event executing / last executed. */
    Tick globalNow() const { return _globalNow; }

    /** Domain hosting accelerator tile @p tile: round-robin over
     *  domains 1..D-1. */
    DomainId
    tileDomain(std::uint32_t tile) const
    {
        auto n = numDomains();
        return 1 + (tile % (n - 1));
    }

    /** Record that accelerator @p accel executes in domain @p d
     *  (frontends call this from bindShard). */
    void setAccelDomain(std::uint32_t accel, DomainId d);

    /** Domain of accelerator @p accel (0 when never bound). */
    DomainId accelDomain(std::uint32_t accel) const;

    /**
     * Execute @p fn with current() == @p d. The ordered router is
     * single-threaded, so this is a synchronous scoped switch: it
     * re-points where nested schedule() calls land, nothing else.
     */
    template <typename F>
    void
    onDomain(DomainId d, F &&fn)
    {
        fusion_assert(d < numDomains(), "onDomain: bad domain ", d);
        DomainId prev = _current;
        _current = d;
        fn();
        _current = prev;
    }

    /**
     * Cross-domain delivery from a bound link: schedule @p fn into
     * domain @p dst at absolute tick @p when. @p latency is the link
     * traversal the delivery rode on; it feeds the observed-lookahead
     * bound and must be >= 1 (a zero-latency cross edge would break
     * the conservative window the threaded engine relies on).
     */
    void scheduleCross(DomainId dst, Tick when, Cycles latency,
                       EventFn &&fn);

    /**
     * Execute the globally least (when, priority, sequence) event.
     * @return false when every domain queue is drained.
     */
    bool stepGlobal();

    /** Sum of pending events across domains. */
    std::size_t totalPending() const;
    /** Sum of executed events across domains. */
    std::uint64_t totalExecuted() const;
    /** Global head tick (kTickNever when drained). */
    Tick headTick() const;

    /** Cross-domain deliveries routed so far. */
    std::uint64_t crossings() const { return _crossings; }
    /** Minimum cross-edge latency observed (kTickNever if none). */
    Tick minCrossLatency() const { return _minCross; }

    Domain &domain(DomainId d) { return _domains[d]; }
    const Domain &domain(DomainId d) const { return _domains[d]; }

  private:
    SimContext &_ctx;
    /** deque: Domain is pinned in place (EventQueue is immovable). */
    std::deque<Domain> _domains;
    std::uint64_t _seq = 0; ///< shared (when, pri, seq) source
    DomainId _current = 0;
    Tick _globalNow = 0;
    std::uint64_t _crossings = 0;
    Tick _minCross = kTickNever;
    std::vector<DomainId> _accelDomain;
};

} // namespace fusion::shard

#endif // FUSION_SIM_SHARD_ROUTER_HH
