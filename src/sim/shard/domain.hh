/**
 * @file
 * One scheduling domain of the sharded event kernel.
 *
 * A domain owns a private EventQueue plus a small stats arena of
 * cross-domain traffic counters. Domains are partitions of the
 * simulated system: domain 0 is the host + LLC + DMA complex, and
 * each accelerator / MESI tile group maps onto one of the remaining
 * domains (see DESIGN.md §8 "Sharded kernel" for the domain map).
 *
 * Two engines drive domains:
 *  - shard::Router executes them in exact global (when, priority,
 *    sequence) order on one thread, preserving byte-identical output
 *    for full-system runs;
 *  - shard::DomainScheduler advances them on a worker pool under
 *    conservative lookahead windows (kernel benchmarks, property
 *    tests).
 */

#ifndef FUSION_SIM_SHARD_DOMAIN_HH
#define FUSION_SIM_SHARD_DOMAIN_HH

#include <cstdint>
#include <string>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace fusion::shard
{

/** Domain index type; domain 0 is always the host complex. */
using DomainId = std::uint32_t;

/** Sentinel for "no domain". */
inline constexpr DomainId kNoDomain = ~DomainId{0};

/** One scheduling domain: a private event queue + traffic arena. */
struct Domain
{
    DomainId id = 0;
    std::string name; ///< "host", "tile0", ... (diagnostics)

    /** This domain's private event queue. */
    EventQueue q;

    /** Per-source sequence stamp for outgoing cross-domain messages
     *  (parallel engine; gives mailbox entries a total order). */
    std::uint64_t outSeq = 0;

    /** Cross-domain messages delivered into this domain. */
    std::uint64_t received = 0;
    /** Cross-domain messages sent out of this domain. */
    std::uint64_t sent = 0;
    /** Windows in which this domain executed at least one event
     *  (parallel engine). */
    std::uint64_t windows = 0;

    Domain() = default;
    Domain(const Domain &) = delete;
    Domain &operator=(const Domain &) = delete;
};

} // namespace fusion::shard

#endif // FUSION_SIM_SHARD_DOMAIN_HH
