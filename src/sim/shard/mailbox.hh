/**
 * @file
 * Cross-domain mailboxes for the sharded event kernel.
 *
 * Under conservative lookahead, a cross-domain scheduleIn becomes a
 * bounded-delay message: the sender pushes a ShardMsg into the
 * (src, dst) mailbox lane during its window, and the coordinator
 * drains every lane at the window barrier, merging messages in
 * (tick, priority, source domain, sequence) order before scheduling
 * them into the destination queues. The merge key is unique — each
 * source stamps its messages with a private monotone sequence — so
 * the merged order is a total order and delivery is deterministic
 * regardless of worker count or thread timing.
 *
 * Threading contract: mailbox access is phase-exclusive. Exactly one
 * worker (the one executing the source domain) pushes into a lane
 * during a window; only the coordinator touches lanes at the
 * barrier. The barrier itself is the synchronization edge — no
 * per-push locking is needed, and TSAN agrees (ShardBenchSmoke).
 */

#ifndef FUSION_SIM_SHARD_MAILBOX_HH
#define FUSION_SIM_SHARD_MAILBOX_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/shard/domain.hh"
#include "sim/types.hh"

namespace fusion::shard
{

/** One cross-domain delivery in flight between window barriers. */
struct ShardMsg
{
    Tick when = 0;       ///< absolute delivery tick
    int pri = 0;         ///< EventPriority value
    DomainId src = 0;    ///< sending domain
    std::uint64_t seq = 0; ///< per-source monotone stamp
    EventFn fn;

    ShardMsg() = default;
    ShardMsg(Tick w, int p, DomainId s, std::uint64_t q, EventFn &&f)
        : when(w), pri(p), src(s), seq(q), fn(std::move(f))
    {
    }
};

/**
 * The canonical cross-domain merge order:
 * (tick, priority, source domain, sequence). Total because (src,
 * seq) pairs are unique across all messages of one barrier.
 */
struct ShardMsgOrder
{
    bool
    operator()(const ShardMsg &a, const ShardMsg &b) const
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.pri != b.pri)
            return a.pri < b.pri;
        if (a.src != b.src)
            return a.src < b.src;
        return a.seq < b.seq;
    }
};

/**
 * Reference merge for the randomized property test: the order every
 * barrier drain must reproduce, stated as one plain sort.
 */
inline void
referenceMerge(std::vector<ShardMsg> &msgs)
{
    std::sort(msgs.begin(), msgs.end(), ShardMsgOrder{});
}

/** One (src, dst) mailbox lane. */
class Mailbox
{
  public:
    /** Push a message (source worker, during its window). */
    void
    push(ShardMsg &&m)
    {
        _v.push_back(std::move(m));
    }

    bool empty() const { return _v.empty(); }
    std::size_t size() const { return _v.size(); }

    /** Move all messages into @p out and clear (coordinator, at the
     *  window barrier). */
    void
    drainInto(std::vector<ShardMsg> &out)
    {
        for (auto &m : _v)
            out.push_back(std::move(m));
        _v.clear();
    }

  private:
    std::vector<ShardMsg> _v;
};

} // namespace fusion::shard

#endif // FUSION_SIM_SHARD_MAILBOX_HH
