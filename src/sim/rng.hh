/**
 * @file
 * Deterministic pseudo-random number generation for workload inputs.
 *
 * A SplitMix64 generator: tiny, fast and reproducible across
 * platforms, so synthetic benchmark inputs (and therefore traces,
 * cycle counts and energies) are identical on every run.
 */

#ifndef FUSION_SIM_RNG_HH
#define FUSION_SIM_RNG_HH

#include <cstdint>

namespace fusion
{

/** SplitMix64 deterministic PRNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : _state(seed)
    {
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (_state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t _state;
};

} // namespace fusion

#endif // FUSION_SIM_RNG_HH
