/**
 * @file
 * Bundle of the per-system simulation services every component needs:
 * the event queue (time), the stats registry, and the energy ledger.
 */

#ifndef FUSION_SIM_SIM_CONTEXT_HH
#define FUSION_SIM_SIM_CONTEXT_HH

#include "energy/energy_ledger.hh"
#include "obs/telemetry.hh"
#include "sim/event_queue.hh"
#include "sim/guard/registry.hh"
#include "sim/stats.hh"

namespace fusion
{

/**
 * One SimContext exists per simulated system instance; components
 * keep a reference and never outlive it.
 */
struct SimContext
{
    EventQueue eq;
    stats::Registry stats;
    energy::Ledger energy;
    guard::GuardRegistry guard;
    obs::Telemetry obs;

    /** Current simulated time. */
    Tick now() const { return eq.now(); }
};

} // namespace fusion

#endif // FUSION_SIM_SIM_CONTEXT_HH
