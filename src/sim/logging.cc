#include "sim/logging.hh"

#include <cctype>
#include <cstring>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <stdexcept>

#include "sim/guard/sim_error.hh"

namespace fusion
{

namespace
{

// The debug-category registry is the only process-global mutable
// state in the simulator; guard it so sweep worker threads can
// trace concurrently while a test toggles categories.
std::shared_mutex &
categoryMutex()
{
    static std::shared_mutex mu;
    return mu;
}

std::set<std::string, std::less<>> &
categorySet()
{
    static std::set<std::string, std::less<>> cats;
    return cats;
}

} // namespace

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s @ %s:%d\n", msg.c_str(), file, line);
    // Inside a running System (TickScope bound), unwind as a typed
    // SimError so runProgram/runSweep can record the failure with
    // its assertion text and simulated tick instead of taking the
    // whole process down. Otherwise — unit tests poking raw
    // components — keep the historical abort().
    if (guard::TickScope::active()) {
        guard::SimError e;
        e.category = guard::ErrorCategory::Assertion;
        e.component = std::string(file) + ":" + std::to_string(line);
        e.message = msg;
        e.tick = guard::TickScope::currentTick();
        throw guard::SimErrorException(std::move(e));
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

void
Debug::enable(std::string_view category)
{
    std::unique_lock lk(categoryMutex());
    categorySet().emplace(category);
}

void
Debug::disable(std::string_view category)
{
    std::unique_lock lk(categoryMutex());
    auto it = categorySet().find(category);
    if (it != categorySet().end())
        categorySet().erase(it);
}

bool
Debug::enabled(std::string_view category)
{
    std::shared_lock lk(categoryMutex());
    return categorySet().find(category) != categorySet().end();
}

bool
Debug::isKnown(std::string_view category)
{
    for (const char *known : kKnownCategories)
        if (category == known)
            return true;
    return false;
}

void
Debug::initFromEnvironment()
{
    const char *env = std::getenv("FUSION_DEBUG");
    if (!env)
        return;
    std::string_view spec(env);
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        std::string_view name = spec.substr(pos, comma - pos);
        pos = comma + 1;
        // Tolerate "ACC, MESI" and stray blanks between commas.
        while (!name.empty() &&
               std::isspace(static_cast<unsigned char>(name.front())))
            name.remove_prefix(1);
        while (!name.empty() &&
               std::isspace(static_cast<unsigned char>(name.back())))
            name.remove_suffix(1);
        if (name.empty())
            continue;
        if (!isKnown(name)) {
            std::string valid;
            for (const char *known : kKnownCategories) {
                if (!valid.empty())
                    valid += ", ";
                valid += known;
            }
            fusion_warn("FUSION_DEBUG: unknown category '", name,
                        "' (known: ", valid, ")");
        }
        // Enable even when unknown: tests and out-of-tree code may
        // instrument private categories; the warn is advisory.
        enable(name);
    }
}

void
debugPrint(std::string_view category, const std::string &msg)
{
    std::fprintf(stderr, "[%.*s] %s\n",
                 static_cast<int>(category.size()), category.data(),
                 msg.c_str());
}

} // namespace fusion
