/**
 * @file
 * Minimal binary wire format helpers shared by the on-disk stores
 * (trace::TraceStore and sweep::ResultCache).
 *
 * The encoding is deliberately tiny and fully deterministic:
 *
 *  - unsigned integers are LEB128 varints (7 bits per byte, low
 *    group first);
 *  - signed integers are zigzag-folded into varints so small
 *    negative deltas stay short;
 *  - doubles are serialized as their IEEE-754 bit pattern in a
 *    fixed 8-byte little-endian field, so round-trips are bit-exact
 *    and re-serialized JSON (%.17g) is byte-identical;
 *  - strings are a varint length followed by raw bytes.
 *
 * Reader methods are total: they return false on truncation or
 * malformed input instead of crashing, which is what makes a
 * corrupted store entry degrade to a cache miss (docs/HARDENING.md,
 * "Corrupt on-disk artifacts").
 *
 * wrapPayload()/unwrapPayload() add the shared file envelope: a
 * 4-byte magic, a format version, the payload length and an FNV-1a
 * content hash over the payload. unwrapPayload() validates all four
 * before handing out a single payload byte, so decoders only ever
 * see content that hashed correctly end to end.
 */

#ifndef FUSION_SIM_WIRE_HH
#define FUSION_SIM_WIRE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "sim/hash.hh"

namespace fusion::wire
{

/** Append-only encoder over a std::string buffer. */
class Writer
{
  public:
    void
    u64(std::uint64_t v)
    {
        while (v >= 0x80) {
            _buf.push_back(static_cast<char>(0x80 | (v & 0x7f)));
            v >>= 7;
        }
        _buf.push_back(static_cast<char>(v));
    }

    void u32(std::uint32_t v) { u64(v); }
    void u8(std::uint8_t v) { _buf.push_back(static_cast<char>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    /** Zigzag-folded signed varint. */
    void
    i64(std::int64_t v)
    {
        u64((static_cast<std::uint64_t>(v) << 1) ^
            static_cast<std::uint64_t>(v >> 63));
    }

    /** IEEE-754 bit pattern, fixed 8 bytes little-endian. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        for (int i = 0; i < 8; ++i)
            _buf.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
    }

    void
    str(std::string_view s)
    {
        u64(s.size());
        _buf.append(s.data(), s.size());
    }

    const std::string &bytes() const { return _buf; }
    std::string take() { return std::move(_buf); }

  private:
    std::string _buf;
};

/** Cursor-based decoder; every method is truncation-safe. */
class Reader
{
  public:
    explicit Reader(std::string_view bytes) : _bytes(bytes) {}

    bool
    u64(std::uint64_t &out)
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (_pos >= _bytes.size())
                return false;
            std::uint8_t b =
                static_cast<std::uint8_t>(_bytes[_pos++]);
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80)) {
                out = v;
                return true;
            }
        }
        return false; // > 10 groups: malformed
    }

    bool
    u32(std::uint32_t &out)
    {
        std::uint64_t v;
        if (!u64(v) || v > 0xffffffffull)
            return false;
        out = static_cast<std::uint32_t>(v);
        return true;
    }

    bool
    u8(std::uint8_t &out)
    {
        if (_pos >= _bytes.size())
            return false;
        out = static_cast<std::uint8_t>(_bytes[_pos++]);
        return true;
    }

    bool
    boolean(bool &out)
    {
        std::uint8_t b;
        if (!u8(b) || b > 1)
            return false;
        out = b != 0;
        return true;
    }

    bool
    i64(std::int64_t &out)
    {
        std::uint64_t z;
        if (!u64(z))
            return false;
        out = static_cast<std::int64_t>((z >> 1) ^
                                        (~(z & 1) + 1));
        return true;
    }

    bool
    f64(double &out)
    {
        if (_bytes.size() - _pos < 8)
            return false;
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; ++i)
            bits |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                        _bytes[_pos + static_cast<std::size_t>(i)]))
                    << (8 * i);
        _pos += 8;
        std::memcpy(&out, &bits, sizeof(out));
        return true;
    }

    bool
    str(std::string &out)
    {
        std::uint64_t n;
        if (!u64(n) || n > _bytes.size() - _pos)
            return false;
        out.assign(_bytes.data() + _pos, static_cast<std::size_t>(n));
        _pos += static_cast<std::size_t>(n);
        return true;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return _bytes.size() - _pos; }
    bool done() const { return _pos == _bytes.size(); }

  private:
    std::string_view _bytes;
    std::size_t _pos = 0;
};

/**
 * File envelope: magic (4 bytes) | version varint | payload length
 * varint | payload FNV-1a varint | payload bytes.
 */
inline std::string
wrapPayload(std::string_view magic, std::uint32_t version,
            std::string_view payload)
{
    Writer w;
    std::string out(magic);
    w.u32(version);
    w.u64(payload.size());
    w.u64(fnv1a(payload));
    out += w.bytes();
    out.append(payload.data(), payload.size());
    return out;
}

/**
 * Validate and strip the envelope. On success @p payload views into
 * @p bytes (which must outlive it). On any mismatch — wrong magic,
 * wrong version, truncated file, trailing garbage, or an FNV-1a
 * content hash that does not match — returns false and, when @p err
 * is non-null, stores a one-line reason.
 */
inline bool
unwrapPayload(std::string_view magic, std::uint32_t version,
              std::string_view bytes, std::string_view &payload,
              std::string *err)
{
    auto fail = [&](const char *why) {
        if (err)
            *err = why;
        return false;
    };
    if (bytes.size() < magic.size() ||
        bytes.substr(0, magic.size()) != magic)
        return fail("bad magic");
    Reader r(bytes.substr(magic.size()));
    std::uint32_t v;
    std::uint64_t len, hash;
    if (!r.u32(v) || !r.u64(len) || !r.u64(hash))
        return fail("truncated header");
    if (v != version)
        return fail("format version mismatch");
    if (r.remaining() != len)
        return fail("payload length mismatch");
    std::string_view p =
        bytes.substr(bytes.size() - static_cast<std::size_t>(len));
    if (fnv1a(p) != hash)
        return fail("content hash mismatch");
    payload = p;
    return true;
}

} // namespace fusion::wire

#endif // FUSION_SIM_WIRE_HH
