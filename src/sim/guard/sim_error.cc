/**
 * @file
 * SimError rendering and the thread-local tick binding used to stamp
 * simulated time into errors raised from deep inside components.
 */

#include "sim/guard/sim_error.hh"

#include <cstdio>
#include <sstream>

#include "sim/event_queue.hh"

namespace fusion::guard
{

namespace
{

/** Escape a string for a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** The event queue bound to this thread by the innermost TickScope. */
thread_local const EventQueue *tBoundQueue = nullptr;

} // namespace

const char *
errorCategoryName(ErrorCategory c)
{
    switch (c) {
      case ErrorCategory::Assertion:
        return "assertion";
      case ErrorCategory::Deadlock:
        return "deadlock";
      case ErrorCategory::NoProgress:
        return "no-progress";
      case ErrorCategory::CycleBudget:
        return "cycle-budget";
      case ErrorCategory::WallClock:
        return "wall-clock";
      case ErrorCategory::Invariant:
        return "invariant";
      case ErrorCategory::Internal:
        return "internal";
    }
    return "internal";
}

std::string
SimError::toJson() const
{
    std::ostringstream os;
    os << "{\"category\":\"" << errorCategoryName(category) << '"'
       << ",\"component\":\"" << jsonEscape(component) << '"'
       << ",\"message\":\"" << jsonEscape(message) << '"'
       << ",\"tick\":" << tick << ",\"diagnostic\":\""
       << jsonEscape(diagnostic) << "\"}";
    return os.str();
}

SimErrorException::SimErrorException(SimError e)
    : _error(std::move(e))
{
    _what = std::string(errorCategoryName(_error.category)) + ": " +
            _error.message + " [" + _error.component + " @ tick " +
            std::to_string(_error.tick) + "]";
}

TickScope::TickScope(const EventQueue &eq)
    : _prev(tBoundQueue)
{
    tBoundQueue = &eq;
}

TickScope::~TickScope()
{
    tBoundQueue = _prev;
}

bool
TickScope::active()
{
    return tBoundQueue != nullptr;
}

Tick
TickScope::currentTick()
{
    return tBoundQueue ? tBoundQueue->now() : 0;
}

} // namespace fusion::guard
