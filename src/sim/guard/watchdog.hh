/**
 * @file
 * Forward-progress watchdog wired into the System::run() event loop.
 *
 * Checks run at tick boundaries (when the next pending event is at a
 * later tick than the one just completed), so same-tick protocol
 * transients — an L0X->L0X forward and its lease-transfer notice,
 * for instance — are never observed half-applied. On trip, the
 * watchdog throws a SimErrorException carrying a structured
 * diagnostic (event-queue state plus every registered component
 * snapshot) instead of letting the simulation hang or abort.
 */

#ifndef FUSION_SIM_GUARD_WATCHDOG_HH
#define FUSION_SIM_GUARD_WATCHDOG_HH

#include <chrono>
#include <cstdint>

#include "sim/guard/registry.hh"
#include "sim/guard/sim_error.hh"
#include "sim/types.hh"

namespace fusion
{

class EventQueue;

namespace guard
{

/** One watchdog guards one System::run() loop. */
class Watchdog
{
  public:
    Watchdog(GuardRegistry &reg, const EventQueue &eq);

    /**
     * Call before each EventQueue::step(). Runs periodic invariants
     * and liveness checks at tick boundaries; throws
     * SimErrorException on any trip.
     */
    void beforeStep();

    /**
     * Call after the queue drains. Throws a Deadlock SimError when
     * the program did not finish.
     */
    void onDrained(bool finished);

    /** End-of-sim invariant pass (when configured). */
    void atEnd();

  private:
    [[noreturn]] void trip(ErrorCategory cat, std::string message);
    void checkInvariants(Tick now, bool at_end);

    GuardRegistry &_reg;
    const EventQueue &_eq;
    bool _active; ///< any liveness/safety check enabled
    Tick _nextInvariantTick = 0;
    std::uint64_t _lastProgress = 0;
    Tick _lastProgressTick = 0;
    std::uint64_t _steps = 0;
    std::chrono::steady_clock::time_point _start;
};

} // namespace guard
} // namespace fusion

#endif // FUSION_SIM_GUARD_WATCHDOG_HH
