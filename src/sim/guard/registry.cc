/**
 * @file
 * GuardRegistry: snapshot rendering, invariant sweeps, and the
 * one-shot fault-injection trigger.
 */

#include "sim/guard/registry.hh"

#include <sstream>

namespace fusion::guard
{

void
GuardRegistry::registerSnapshot(std::string name, SnapshotFn fn)
{
    _snapshots.emplace_back(std::move(name), std::move(fn));
}

void
GuardRegistry::registerInvariant(std::string name, InvariantFn fn)
{
    _invariants.emplace_back(std::move(name), std::move(fn));
}

std::uint64_t
GuardRegistry::outstandingTotal() const
{
    std::uint64_t total = 0;
    for (const auto &[name, fn] : _snapshots)
        total += fn().outstanding;
    return total;
}

std::string
GuardRegistry::renderSnapshot() const
{
    std::ostringstream os;
    for (const auto &[name, fn] : _snapshots) {
        ComponentState s = fn();
        os << "  " << name << ": outstanding=" << s.outstanding;
        if (!s.detail.empty())
            os << ' ' << s.detail;
        os << '\n';
    }
    return os.str();
}

std::vector<std::string>
GuardRegistry::runInvariants(Tick now, bool at_end) const
{
    InvariantContext ctx{now, at_end};
    std::vector<std::string> violations;
    for (const auto &[name, fn] : _invariants) {
        std::vector<std::string> local;
        fn(ctx, local);
        for (auto &m : local)
            violations.push_back(name + ": " + std::move(m));
    }
    return violations;
}

bool
GuardRegistry::fireFault(FaultKind kind)
{
    if (_cfg.fault.kind != kind || _faultFired)
        return false;
    if (_faultSeen++ < _cfg.fault.triggerAfter)
        return false;
    _faultFired = true;
    return true;
}

} // namespace fusion::guard
