/**
 * @file
 * GuardRegistry: snapshot rendering, invariant sweeps, and the
 * multi-fault schedule trigger.
 */

#include "sim/guard/registry.hh"

#include <sstream>

namespace fusion::guard
{

void
GuardRegistry::configure(const GuardConfig &cfg)
{
    _cfg = cfg;
    _faults.clear();
    _armedMask = 0;
    _firedMask = 0;
    _faultsFired = 0;
    // Legacy single-plan forwarder: the old FaultPlan field becomes
    // the first always-fire entry of the effective schedule, so every
    // pre-schedule caller keeps its exact semantics.
    _lastFiredDelay = cfg.fault.delay;
    if (cfg.fault.kind != FaultKind::None) {
        _faults.push_back({ArmedFault{cfg.fault.kind,
                                      cfg.fault.triggerAfter,
                                      cfg.fault.delay, 1.0}});
    }
    for (const ArmedFault &f : cfg.schedule.faults) {
        if (f.kind != FaultKind::None)
            _faults.push_back({f});
    }
    for (const FaultEntry &e : _faults)
        _armedMask |= 1u << static_cast<unsigned>(e.fault.kind);
    _rng = Rng(cfg.schedule.seed ? cfg.schedule.seed
                                 : 0x9e3779b97f4a7c15ull);
}

void
GuardRegistry::registerSnapshot(std::string name, SnapshotFn fn)
{
    _snapshots.emplace_back(std::move(name), std::move(fn));
}

void
GuardRegistry::registerInvariant(std::string name, InvariantFn fn)
{
    _invariants.emplace_back(std::move(name), std::move(fn));
}

std::uint64_t
GuardRegistry::outstandingTotal() const
{
    std::uint64_t total = 0;
    for (const auto &[name, fn] : _snapshots)
        total += fn().outstanding;
    return total;
}

std::string
GuardRegistry::renderSnapshot() const
{
    std::ostringstream os;
    for (const auto &[name, fn] : _snapshots) {
        ComponentState s = fn();
        os << "  " << name << ": outstanding=" << s.outstanding;
        if (!s.detail.empty())
            os << ' ' << s.detail;
        os << '\n';
    }
    return os.str();
}

std::vector<std::string>
GuardRegistry::runInvariants(Tick now, bool at_end) const
{
    InvariantContext ctx{now, at_end};
    std::vector<std::string> violations;
    for (const auto &[name, fn] : _invariants) {
        std::vector<std::string> local;
        fn(ctx, local);
        for (auto &m : local)
            violations.push_back(name + ": " + std::move(m));
    }
    return violations;
}

bool
GuardRegistry::fireFaultSlow(FaultKind kind)
{
    // One shared opportunity counter per entry: every call for the
    // entry's kind advances it, whether or not the draw succeeds, so
    // a p < 1 entry keeps retrying on later opportunities.
    bool any_pending = false;
    bool fired = false;
    for (FaultEntry &e : _faults) {
        if (e.fault.kind != kind)
            continue;
        if (e.fired)
            continue;
        if (fired) {
            any_pending = true;
            continue; // at most one entry fires per opportunity
        }
        if (e.seen++ < e.fault.triggerAfter) {
            any_pending = true;
            continue;
        }
        if (e.fault.probability < 1.0 &&
            _rng.uniform() >= e.fault.probability) {
            any_pending = true;
            continue;
        }
        e.fired = true;
        fired = true;
        _lastFiredDelay = e.fault.delay;
        _firedMask |= 1u << static_cast<unsigned>(kind);
        ++_faultsFired;
    }
    if (!any_pending)
        _armedMask &= ~(1u << static_cast<unsigned>(kind));
    return fired;
}

} // namespace fusion::guard
