/**
 * @file
 * Per-system guard registry. Components self-register two kinds of
 * hooks during construction:
 *
 *  - snapshots: "what is outstanding right now" providers the
 *    watchdog renders into a diagnostic dump when it trips;
 *  - invariants: safety predicates (single-writer, lease validity,
 *    MESI directory agreement, MSHR/credit conservation) run every
 *    K cycles and/or at end-of-sim.
 *
 * Registration order is construction order, which is deterministic,
 * so the rendered diagnostic is byte-stable across runs and worker
 * counts. The registry also hosts the forward-progress counter and
 * the test-only fault-injection plan.
 */

#ifndef FUSION_SIM_GUARD_REGISTRY_HH
#define FUSION_SIM_GUARD_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/guard/guard_config.hh"
#include "sim/types.hh"

namespace fusion::guard
{

/** One component's outstanding-transaction snapshot. */
struct ComponentState
{
    /** Outstanding transactions (MSHRs, queued DMA lines, ...). */
    std::uint64_t outstanding = 0;
    /** Free-form per-component detail, one logical line. */
    std::string detail;
};

/** Context handed to invariant checkers. */
struct InvariantContext
{
    Tick now = 0;
    /** True for the end-of-sim pass (stricter rules apply). */
    bool atEnd = false;
};

/** Renders a component's current ComponentState. */
using SnapshotFn = std::function<ComponentState()>;

/**
 * Checks one component's invariants; appends one message per
 * violation to the output vector.
 */
using InvariantFn =
    std::function<void(const InvariantContext &,
                       std::vector<std::string> &)>;

/** The per-system registry owned by SimContext. */
class GuardRegistry
{
  public:
    /** Install the run's GuardConfig (System ctor, before wiring). */
    void configure(const GuardConfig &cfg) { _cfg = cfg; }
    const GuardConfig &config() const { return _cfg; }

    /** Register a named snapshot provider (construction order). */
    void registerSnapshot(std::string name, SnapshotFn fn);
    /** Register a named invariant checker (construction order). */
    void registerInvariant(std::string name, InvariantFn fn);

    /** Record one retirement (op completion, DMA line, grant). */
    void noteProgress() { ++_progress; }
    /** Monotone retirement counter the watchdog samples. */
    std::uint64_t progressCount() const { return _progress; }

    /** Sum of all snapshot providers' outstanding counts. */
    std::uint64_t outstandingTotal() const;

    /** Render every snapshot, one "  name: ..." line each. */
    std::string renderSnapshot() const;

    /**
     * Run every registered invariant checker.
     * @return violations as "checker: message" lines (empty = pass).
     */
    std::vector<std::string> runInvariants(Tick now,
                                           bool at_end) const;

    /**
     * Test-only fault injection: true when the caller should inject
     * fault @p kind right now. Fires exactly once, on the
     * (triggerAfter+1)-th opportunity. O(1) and false when no plan
     * of this kind is armed, so production paths stay free.
     */
    bool fireFault(FaultKind kind);
    /** Delay parameter of the armed fault plan. */
    Cycles faultDelay() const { return _cfg.fault.delay; }

  private:
    GuardConfig _cfg;
    std::uint64_t _progress = 0;
    std::uint64_t _faultSeen = 0;
    bool _faultFired = false;
    std::vector<std::pair<std::string, SnapshotFn>> _snapshots;
    std::vector<std::pair<std::string, InvariantFn>> _invariants;
};

} // namespace fusion::guard

#endif // FUSION_SIM_GUARD_REGISTRY_HH
