/**
 * @file
 * Per-system guard registry. Components self-register two kinds of
 * hooks during construction:
 *
 *  - snapshots: "what is outstanding right now" providers the
 *    watchdog renders into a diagnostic dump when it trips;
 *  - invariants: safety predicates (single-writer, lease validity,
 *    MESI directory agreement, MSHR/credit conservation) run every
 *    K cycles and/or at end-of-sim.
 *
 * Registration order is construction order, which is deterministic,
 * so the rendered diagnostic is byte-stable across runs and worker
 * counts. The registry also hosts the forward-progress counter and
 * the test-only fault-injection schedule: multiple armed faults, each
 * with independent trigger state, plus a SplitMix64 stream for
 * probabilistic firing.
 */

#ifndef FUSION_SIM_GUARD_REGISTRY_HH
#define FUSION_SIM_GUARD_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/guard/guard_config.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace fusion::guard
{

/** One component's outstanding-transaction snapshot. */
struct ComponentState
{
    /** Outstanding transactions (MSHRs, queued DMA lines, ...). */
    std::uint64_t outstanding = 0;
    /** Free-form per-component detail, one logical line. */
    std::string detail;
};

/** Context handed to invariant checkers. */
struct InvariantContext
{
    Tick now = 0;
    /** True for the end-of-sim pass (stricter rules apply). */
    bool atEnd = false;
};

/** Renders a component's current ComponentState. */
using SnapshotFn = std::function<ComponentState()>;

/**
 * Checks one component's invariants; appends one message per
 * violation to the output vector.
 */
using InvariantFn =
    std::function<void(const InvariantContext &,
                       std::vector<std::string> &)>;

/** The per-system registry owned by SimContext. */
class GuardRegistry
{
  public:
    /** Install the run's GuardConfig (System ctor, before wiring). */
    void configure(const GuardConfig &cfg);
    const GuardConfig &config() const { return _cfg; }

    /** Register a named snapshot provider (construction order). */
    void registerSnapshot(std::string name, SnapshotFn fn);
    /** Register a named invariant checker (construction order). */
    void registerInvariant(std::string name, InvariantFn fn);

    /** Record one retirement (op completion, DMA line, grant). */
    void noteProgress() { ++_progress; }
    /** Monotone retirement counter the watchdog samples. */
    std::uint64_t progressCount() const { return _progress; }

    /** Sum of all snapshot providers' outstanding counts. */
    std::uint64_t outstandingTotal() const;

    /** Render every snapshot, one "  name: ..." line each. */
    std::string renderSnapshot() const;

    /**
     * Run every registered invariant checker.
     * @return violations as "checker: message" lines (empty = pass).
     */
    std::vector<std::string> runInvariants(Tick now,
                                           bool at_end) const;

    /**
     * Test-only fault injection: true when the caller should inject
     * fault @p kind right now. Each armed schedule entry fires at
     * most once, from its (triggerAfter+1)-th opportunity onwards,
     * subject to its probability draw. The disabled path is a single
     * load-and-test of a kind bitmask, so production runs stay free.
     */
    bool
    fireFault(FaultKind kind)
    {
        if (!(_armedMask &
              (1u << static_cast<unsigned>(kind)))) [[likely]]
            return false;
        return fireFaultSlow(kind);
    }

    /**
     * Delay parameter of the most recently fired fault (before any
     * firing: the legacy plan's delay), consumed by delay-style
     * injection sites right after fireFault returns true.
     */
    Cycles faultDelay() const { return _lastFiredDelay; }

    /** Total schedule entries that have fired so far. */
    std::uint32_t faultsFired() const { return _faultsFired; }
    /** Bitmask (1 << kind) of fault kinds that have fired. */
    std::uint32_t firedFaultMask() const { return _firedMask; }

  private:
    bool fireFaultSlow(FaultKind kind);

    /** Trigger state for one effective-schedule entry. */
    struct FaultEntry
    {
        ArmedFault fault;
        std::uint64_t seen = 0;
        bool fired = false;
    };

    GuardConfig _cfg;
    std::uint64_t _progress = 0;
    std::uint32_t _armedMask = 0;
    std::uint32_t _firedMask = 0;
    std::uint32_t _faultsFired = 0;
    Cycles _lastFiredDelay = 0;
    std::vector<FaultEntry> _faults;
    Rng _rng;
    std::vector<std::pair<std::string, SnapshotFn>> _snapshots;
    std::vector<std::pair<std::string, InvariantFn>> _invariants;
};

} // namespace fusion::guard

#endif // FUSION_SIM_GUARD_REGISTRY_HH
