/**
 * @file
 * Fault-injection campaign engine: seeded trial generation, golden
 * hashing, outcome triage, the per-kind detection table, and the
 * delta-debugging repro shrinker.
 */

#include "sim/guard/campaign.hh"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "core/runner.hh"
#include "sim/hash.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sweep/sweep.hh"

namespace fusion::guard
{

namespace
{

/** Injectable kinds a campaign draws from by default. */
const std::vector<FaultKind> &
defaultFaultPool()
{
    static const std::vector<FaultKind> pool{
        FaultKind::LeakMshr,    FaultKind::DropWriteback,
        FaultKind::DelayGrant,  FaultKind::CorruptLease,
        FaultKind::DropFlit,    FaultKind::DupFlit,
        FaultKind::ReorderFlit, FaultKind::TruncateDma,
        FaultKind::StallDma,    FaultKind::CorruptDir,
        FaultKind::StaleHostL1,
    };
    return pool;
}

/** Stir two 64-bit values (SplitMix-style avalanche). */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Watchdog settings for injected runs: frequent invariant sweeps so
 * corruption is caught near its cause, a no-progress tripwire, and a
 * hard cycle budget scaled off the clean run so true hangs end in a
 * CycleBudget trip instead of wedging the campaign. Wall-clock stays
 * off — it is nondeterministic under sanitizers.
 */
GuardConfig
trialGuard(Tick clean_cycles)
{
    GuardConfig g;
    g.invariantPeriod = 64;
    g.invariantsAtEnd = true;
    g.noProgressTicks = 1u << 18;
    g.maxCycles = clean_cycles * 32 + (1u << 16);
    return g;
}

/** Draw one trial's random schedule from the trial stream. */
FaultSchedule
drawSchedule(Rng &rng, const CampaignConfig &cfg,
             const std::vector<FaultKind> &pool)
{
    FaultSchedule s;
    std::size_t max_faults = std::max<std::size_t>(1, cfg.maxFaults);
    std::size_t n = 1 + rng.below(max_faults);
    for (std::size_t i = 0; i < n; ++i) {
        ArmedFault f;
        f.kind = pool[rng.below(pool.size())];
        f.triggerAfter = rng.below(32);
        // Delays span several invariant periods so delayed effects
        // (inflated leases, stalled completions) stay observable.
        f.delay = static_cast<Cycles>(256 + rng.below(2048));
        f.probability = rng.below(4) == 0 ? 0.5 : 1.0;
        s.faults.push_back(f);
    }
    s.seed = rng.next() | 1;
    return s;
}

/** True when every fired kind in @p mask only perturbs timing. */
bool
maskTimingOnly(std::uint32_t mask)
{
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
        if (!(mask & (1u << k)))
            continue;
        if (!faultPerturbsTimingOnly(static_cast<FaultKind>(k)))
            return false;
    }
    return true;
}

/** Classify one finished injected run against its golden hash. */
TrialOutcome
triage(const core::RunResult &r, std::uint64_t clean_hash,
       std::uint64_t result_hash)
{
    if (r.failed()) {
        switch (r.error->category) {
          case ErrorCategory::CycleBudget:
          case ErrorCategory::WallClock:
            return TrialOutcome::Hang;
          case ErrorCategory::Internal:
            return TrialOutcome::Crash;
          default:
            return TrialOutcome::Detected;
        }
    }
    if (result_hash == clean_hash)
        return TrialOutcome::Benign;
    if (r.faultFiredMask != 0 && maskTimingOnly(r.faultFiredMask))
        return TrialOutcome::Perturbed;
    return TrialOutcome::SilentDivergence;
}

/** Shared per-(system, workload, scale) golden-run info. */
struct CleanRun
{
    std::uint64_t hash = 0;
    Tick totalCycles = 0;
};

TrialResult
finishTrial(TrialResult t, const core::RunResult &r,
            const CleanRun &clean)
{
    t.cleanHash = clean.hash;
    t.faultsFired = r.faultsFired;
    t.firedMask = r.faultFiredMask;
    if (r.failed()) {
        t.errorCategory = errorCategoryName(r.error->category);
        t.errorComponent = r.error->component;
    } else {
        t.resultHash = fnv1a(r.toJson());
    }
    t.outcome = triage(r, clean.hash, t.resultHash);
    return t;
}

std::string
scaleFlag(workloads::Scale scale)
{
    return scale == workloads::Scale::Small ? "--small" : "--paper";
}

std::string
reproCommand(core::SystemKind system, const std::string &workload,
             workloads::Scale scale, const FaultSchedule &schedule)
{
    std::ostringstream os;
    os << "fault_campaign --repro --system "
       << core::systemKindCliName(system) << " --workload "
       << workload << ' ' << scaleFlag(scale) << " --fault-seed "
       << schedule.seed;
    for (const ArmedFault &f : schedule.faults)
        os << " --fault " << faultSpec(f);
    return os.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

const char *
trialOutcomeName(TrialOutcome outcome)
{
    switch (outcome) {
      case TrialOutcome::Benign: return "benign";
      case TrialOutcome::Perturbed: return "perturbed";
      case TrialOutcome::Detected: return "detected";
      case TrialOutcome::Hang: return "hang";
      case TrialOutcome::SilentDivergence: return "silent-divergence";
      case TrialOutcome::Crash: return "crash";
    }
    return "unknown";
}

double
KindStats::detectionRate() const
{
    // Benign / perturbed firings needed no detection; of the rest,
    // how many were caught by a typed error?
    std::uint64_t needing = detected + hang + silent + crash;
    if (needing == 0)
        return 1.0;
    return static_cast<double>(detected) /
           static_cast<double>(needing);
}

std::size_t
CampaignReport::countOutcome(TrialOutcome outcome) const
{
    std::size_t n = 0;
    for (const TrialResult &t : trials)
        if (t.outcome == outcome)
            ++n;
    return n;
}

bool
CampaignReport::clean() const
{
    return countOutcome(TrialOutcome::SilentDivergence) == 0 &&
           countOutcome(TrialOutcome::Crash) == 0;
}

std::string
CampaignReport::renderTable() const
{
    std::ostringstream os;
    os << std::left << std::setw(15) << "fault kind" << std::right
       << std::setw(7) << "armed" << std::setw(7) << "fired"
       << std::setw(9) << "detect" << std::setw(6) << "hang"
       << std::setw(8) << "silent" << std::setw(7) << "crash"
       << std::setw(8) << "benign" << std::setw(9) << "perturb"
       << std::setw(8) << "rate" << '\n';
    for (const KindStats &k : kinds) {
        os << std::left << std::setw(15) << faultKindName(k.kind)
           << std::right << std::setw(7) << k.armedTrials
           << std::setw(7) << k.firedTrials << std::setw(9)
           << k.detected << std::setw(6) << k.hang << std::setw(8)
           << k.silent << std::setw(7) << k.crash << std::setw(8)
           << k.benign << std::setw(9) << k.perturbed
           << std::setw(8) << std::fixed << std::setprecision(2)
           << k.detectionRate() << '\n';
    }
    return os.str();
}

std::string
CampaignReport::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"seed\": " << seed << ",\n  \"trials\": [\n";
    for (std::size_t i = 0; i < trials.size(); ++i) {
        const TrialResult &t = trials[i];
        os << "    {\"index\": " << t.index << ", \"system\": \""
           << core::systemKindCliName(t.system)
           << "\", \"workload\": \"" << t.workload
           << "\", \"outcome\": \"" << trialOutcomeName(t.outcome)
           << "\", \"faults\": [";
        for (std::size_t f = 0; f < t.schedule.faults.size(); ++f) {
            os << (f ? ", " : "") << '"'
               << faultSpec(t.schedule.faults[f]) << '"';
        }
        os << "], \"faultSeed\": " << t.schedule.seed
           << ", \"faultsFired\": " << t.faultsFired;
        if (!t.errorCategory.empty()) {
            os << ", \"errorCategory\": \"" << t.errorCategory
               << "\", \"errorComponent\": \""
               << jsonEscape(t.errorComponent) << '"';
        }
        os << '}' << (i + 1 < trials.size() ? "," : "") << '\n';
    }
    os << "  ],\n  \"kinds\": [\n";
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const KindStats &k = kinds[i];
        os << "    {\"kind\": \"" << faultKindName(k.kind)
           << "\", \"armedTrials\": " << k.armedTrials
           << ", \"firedTrials\": " << k.firedTrials
           << ", \"detected\": " << k.detected
           << ", \"hang\": " << k.hang << ", \"silent\": " << k.silent
           << ", \"crash\": " << k.crash
           << ", \"benign\": " << k.benign
           << ", \"perturbed\": " << k.perturbed
           << ", \"detectionRate\": " << std::fixed
           << std::setprecision(4) << k.detectionRate() << '}'
           << (i + 1 < kinds.size() ? "," : "") << '\n';
    }
    os << "  ],\n  \"summary\": {";
    const TrialOutcome all[] = {
        TrialOutcome::Benign,    TrialOutcome::Perturbed,
        TrialOutcome::Detected,  TrialOutcome::Hang,
        TrialOutcome::SilentDivergence, TrialOutcome::Crash};
    for (std::size_t i = 0; i < std::size(all); ++i) {
        os << (i ? ", " : "") << '"' << trialOutcomeName(all[i])
           << "\": " << countOutcome(all[i]);
    }
    os << ", \"clean\": " << (clean() ? "true" : "false")
       << "}\n}\n";
    return os.str();
}

TrialResult
runTrial(core::SystemKind system, const std::string &workload,
         workloads::Scale scale, const FaultSchedule &schedule)
{
    auto prog = core::buildProgram(workload, scale);
    if (!prog)
        fusion_fatal(core::unknownWorkloadMessage(workload));

    core::SystemConfig clean_cfg = core::SystemConfig::preset(
        core::SystemConfig::Preset::Paper, system);
    core::RunResult clean_r = core::runProgram(clean_cfg, *prog);
    fusion_assert(!clean_r.failed(),
                  "clean golden run failed for ", workload);
    CleanRun clean{fnv1a(clean_r.toJson()), clean_r.totalCycles};

    core::SystemConfig cfg = clean_cfg;
    cfg.guard = trialGuard(clean.totalCycles);
    cfg.guard.schedule = schedule;
    core::RunResult r = core::runProgram(cfg, *prog);

    TrialResult t;
    t.system = system;
    t.workload = workload;
    t.schedule = schedule;
    return finishTrial(std::move(t), r, clean);
}

CampaignReport
runCampaign(const CampaignConfig &cfg)
{
    const std::vector<core::SystemKind> systems =
        cfg.systems.empty()
            ? std::vector<core::SystemKind>(
                  std::begin(core::kStaticSystemKinds),
                  std::end(core::kStaticSystemKinds))
            : cfg.systems;
    const std::vector<std::string> workload_pool =
        cfg.workloads.empty() ? std::vector<std::string>{"adpcm"}
                              : cfg.workloads;
    const std::vector<FaultKind> &pool =
        cfg.faultPool.empty() ? defaultFaultPool() : cfg.faultPool;

    // Draw every trial up front so trial i's schedule only depends
    // on (seed, i), never on worker interleaving.
    std::vector<TrialResult> trials(cfg.trials);
    for (std::size_t i = 0; i < cfg.trials; ++i) {
        Rng rng(mix(cfg.seed, i));
        TrialResult &t = trials[i];
        t.index = i;
        t.system = systems[rng.below(systems.size())];
        t.workload = workload_pool[rng.below(workload_pool.size())];
        t.schedule = drawSchedule(rng, cfg, pool);
    }

    // Golden pass: one clean run per distinct (system, workload),
    // hashed for divergence triage and timed for the hang backstop.
    std::map<std::pair<int, std::string>, CleanRun> golden;
    std::vector<sweep::SweepJob> clean_jobs;
    for (const TrialResult &t : trials) {
        auto key = std::make_pair(static_cast<int>(t.system),
                                  t.workload);
        if (golden.count(key))
            continue;
        golden.emplace(key, CleanRun{});
        sweep::SweepJob j;
        j.cfg = core::SystemConfig::preset(
            core::SystemConfig::Preset::Paper, t.system);
        j.cfg.shardDomains = cfg.shardDomains;
        j.workload = t.workload;
        j.scale = cfg.scale;
        j.tag = std::string("clean/") +
                core::systemKindCliName(t.system) + "/" + t.workload;
        clean_jobs.push_back(std::move(j));
    }
    sweep::SweepOptions opt;
    opt.jobs = cfg.jobs;
    std::vector<core::RunResult> clean_results =
        sweep::runSweep(clean_jobs, opt);
    for (std::size_t i = 0; i < clean_jobs.size(); ++i) {
        fusion_assert(!clean_results[i].failed(),
                      "clean golden run failed: ",
                      clean_jobs[i].tag);
        auto key = std::make_pair(
            static_cast<int>(clean_jobs[i].cfg.kind),
            clean_jobs[i].workload);
        golden[key] = CleanRun{fnv1a(clean_results[i].toJson()),
                               clean_results[i].totalCycles};
    }

    // Injected pass: every trial on the fault-isolated sweep pool.
    std::vector<sweep::SweepJob> jobs;
    jobs.reserve(trials.size());
    for (const TrialResult &t : trials) {
        const CleanRun &clean = golden.at(std::make_pair(
            static_cast<int>(t.system), t.workload));
        sweep::SweepJob j;
        j.cfg = core::SystemConfig::preset(
            core::SystemConfig::Preset::Paper, t.system);
        j.cfg.shardDomains = cfg.shardDomains;
        j.cfg.guard = trialGuard(clean.totalCycles);
        j.cfg.guard.schedule = t.schedule;
        j.workload = t.workload;
        j.scale = cfg.scale;
        j.tag = "trial " + std::to_string(t.index);
        jobs.push_back(std::move(j));
    }
    std::vector<core::RunResult> results =
        sweep::runSweep(jobs, opt);

    CampaignReport report;
    report.seed = cfg.seed;
    report.trials.reserve(trials.size());
    for (std::size_t i = 0; i < trials.size(); ++i) {
        const CleanRun &clean = golden.at(std::make_pair(
            static_cast<int>(trials[i].system), trials[i].workload));
        report.trials.push_back(
            finishTrial(std::move(trials[i]), results[i], clean));
    }

    // Per-kind table over the kinds any trial armed.
    std::map<FaultKind, KindStats> stats;
    for (const TrialResult &t : report.trials) {
        std::uint32_t armed = 0;
        for (const ArmedFault &f : t.schedule.faults)
            armed |= 1u << static_cast<unsigned>(f.kind);
        for (std::size_t k = 0; k < kFaultKindCount; ++k) {
            if (!(armed & (1u << k)))
                continue;
            KindStats &ks = stats[static_cast<FaultKind>(k)];
            ks.kind = static_cast<FaultKind>(k);
            ++ks.armedTrials;
            if (!(t.firedMask & (1u << k)))
                continue;
            ++ks.firedTrials;
            switch (t.outcome) {
              case TrialOutcome::Benign: ++ks.benign; break;
              case TrialOutcome::Perturbed: ++ks.perturbed; break;
              case TrialOutcome::Detected: ++ks.detected; break;
              case TrialOutcome::Hang: ++ks.hang; break;
              case TrialOutcome::SilentDivergence:
                ++ks.silent;
                break;
              case TrialOutcome::Crash: ++ks.crash; break;
            }
        }
    }
    for (auto &[kind, ks] : stats)
        report.kinds.push_back(ks);
    return report;
}

std::optional<ShrinkResult>
shrinkTrial(const TrialResult &trial, workloads::Scale scale)
{
    if (trial.outcome == TrialOutcome::Benign ||
        trial.outcome == TrialOutcome::Perturbed)
        return std::nullopt;

    ShrinkResult out;
    out.system = trial.system;
    out.workload = trial.workload;
    out.scale = scale;
    out.schedule = trial.schedule;
    out.outcome = trial.outcome;

    auto reproduces = [&](workloads::Scale s,
                          const FaultSchedule &sched) {
        ++out.probes;
        TrialResult t =
            runTrial(trial.system, trial.workload, s, sched);
        return t.outcome == trial.outcome;
    };

    // Phase 1: shrink the input. A Small repro simulates orders of
    // magnitude faster than Paper scale.
    if (out.scale != workloads::Scale::Small &&
        reproduces(workloads::Scale::Small, out.schedule)) {
        out.scale = workloads::Scale::Small;
    } else if (out.scale != workloads::Scale::Small) {
        // Confirm the original still reproduces at its own scale
        // (guards against a stale TrialResult).
        if (!reproduces(out.scale, out.schedule))
            return std::nullopt;
    }

    // Phase 2: ddmin over the schedule — greedy one-at-a-time
    // removal, restarted until a fixed point, yields a 1-minimal
    // fault list (removing any single entry changes the outcome).
    bool shrunk = true;
    while (shrunk && out.schedule.faults.size() > 1) {
        shrunk = false;
        for (std::size_t i = out.schedule.faults.size(); i-- > 0;) {
            FaultSchedule candidate = out.schedule;
            candidate.faults.erase(candidate.faults.begin() +
                                   static_cast<std::ptrdiff_t>(i));
            if (reproduces(out.scale, candidate)) {
                out.schedule = std::move(candidate);
                shrunk = true;
                break;
            }
        }
    }

    out.reproCommand = reproCommand(out.system, out.workload,
                                    out.scale, out.schedule);
    return out;
}

} // namespace fusion::guard
