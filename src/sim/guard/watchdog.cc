/**
 * @file
 * Watchdog liveness checks and diagnostic-dump construction.
 */

#include "sim/guard/watchdog.hh"

#include <sstream>

#include "sim/event_queue.hh"

namespace fusion::guard
{

Watchdog::Watchdog(GuardRegistry &reg, const EventQueue &eq)
    : _reg(reg), _eq(eq), _active(reg.config().anyEnabled()),
      _start(std::chrono::steady_clock::now())
{
}

void
Watchdog::beforeStep()
{
    if (!_active)
        return;

    const GuardConfig &cfg = _reg.config();
    const Tick now = _eq.now();
    const Tick head = _eq.headTick();

    // Only inspect state at tick boundaries: once every event of the
    // completed tick has run, in-flight same-tick transients (e.g. a
    // FUSION-Dx forward plus its lease-transfer notice) are settled.
    if (head > now) {
        if (cfg.invariantPeriod != 0 && now >= _nextInvariantTick) {
            checkInvariants(now, false);
            _nextInvariantTick = now + cfg.invariantPeriod;
        }

        if (cfg.maxCycles != 0 && head > cfg.maxCycles) {
            trip(ErrorCategory::CycleBudget,
                 "cycle budget of " + std::to_string(cfg.maxCycles) +
                     " exceeded (next event at tick " +
                     std::to_string(head) + ")");
        }

        if (cfg.noProgressTicks != 0) {
            std::uint64_t p = _reg.progressCount();
            if (p != _lastProgress) {
                _lastProgress = p;
                _lastProgressTick = now;
            } else if (now > _lastProgressTick + cfg.noProgressTicks &&
                       _reg.outstandingTotal() > 0) {
                trip(ErrorCategory::NoProgress,
                     "no retirements for " +
                         std::to_string(now - _lastProgressTick) +
                         " ticks with outstanding transactions");
            }
        }
    }

    // Wall-clock checks are amortized: one clock read per 1k events.
    if (cfg.maxWallMs != 0 && (++_steps & 1023) == 0) {
        auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - _start)
                .count();
        if (static_cast<std::uint64_t>(elapsed) > cfg.maxWallMs) {
            trip(ErrorCategory::WallClock,
                 "wall-clock budget of " +
                     std::to_string(cfg.maxWallMs) + " ms exceeded");
        }
    }
}

void
Watchdog::onDrained(bool finished)
{
    if (finished)
        return;
    trip(ErrorCategory::Deadlock,
         "event queue drained before program completion");
}

void
Watchdog::atEnd()
{
    const GuardConfig &cfg = _reg.config();
    if (cfg.invariantsAtEnd || cfg.invariantPeriod != 0)
        checkInvariants(_eq.now(), true);
}

void
Watchdog::trip(ErrorCategory cat, std::string message)
{
    SimError e;
    e.category = cat;
    e.component = "watchdog";
    e.message = std::move(message);
    e.tick = _eq.now();
    std::ostringstream os;
    os << "event queue: pending=" << _eq.pending()
       << " executed=" << _eq.executed();
    if (!_eq.empty())
        os << " head=" << _eq.headTick();
    os << '\n' << _reg.renderSnapshot();
    e.diagnostic = os.str();
    throw SimErrorException(std::move(e));
}

void
Watchdog::checkInvariants(Tick now, bool at_end)
{
    std::vector<std::string> violations =
        _reg.runInvariants(now, at_end);
    if (violations.empty())
        return;
    SimError e;
    e.category = ErrorCategory::Invariant;
    e.component = "invariant-checker";
    e.message = std::to_string(violations.size()) +
                " invariant violation(s)" +
                (at_end ? " at end-of-sim" : "");
    e.tick = now;
    std::ostringstream os;
    for (const auto &v : violations)
        os << "  " << v << '\n';
    os << _reg.renderSnapshot();
    e.diagnostic = os.str();
    throw SimErrorException(std::move(e));
}

} // namespace fusion::guard
