/**
 * @file
 * Randomized fault-injection campaigns over the sweep pool.
 *
 * A campaign runs N seeded trials; each trial picks a system kind, a
 * workload and a random multi-fault FaultSchedule, simulates it with
 * the watchdog + invariant checkers armed, and triages the outcome
 * against a clean (fault-free) golden run of the same job:
 *
 *  - Benign:           run completed, output byte-identical;
 *  - Perturbed:        run completed, output differs, but every
 *                      fired fault only perturbs timing (delays /
 *                      reordering on legal paths) — expected;
 *  - Detected:         a typed SimError (assertion, deadlock,
 *                      no-progress, invariant) surfaced the fault;
 *  - Hang:             only the campaign's cycle-budget backstop
 *                      ended the run;
 *  - SilentDivergence: run completed but the FNV-1a output hash
 *                      differs with a state-corrupting fault fired —
 *                      the checkers missed real corruption;
 *  - Crash:            an internal (untyped) panic escaped.
 *
 * Every SilentDivergence class a campaign surfaces is a missing
 * invariant checker: the fix is a new checker registered by the
 * offending component, not a triage tweak.
 *
 * The delta-debugging shrinker reduces a failing trial to a minimal
 * reproducer: it first drops the input scale, then greedily removes
 * schedule entries while the outcome class still reproduces, and
 * prints a one-line fault_campaign command that replays the result.
 */

#ifndef FUSION_SIM_GUARD_CAMPAIGN_HH
#define FUSION_SIM_GUARD_CAMPAIGN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/results.hh"
#include "core/system_config.hh"
#include "sim/guard/guard_config.hh"
#include "workloads/workload.hh"

namespace fusion::guard
{

/** Triage classes for one campaign trial. */
enum class TrialOutcome : std::uint8_t
{
    Benign,
    Perturbed,
    Detected,
    Hang,
    SilentDivergence,
    Crash,
};

/** Stable lowercase name ("benign", "silent-divergence", ...). */
const char *trialOutcomeName(TrialOutcome outcome);

/** Campaign parameters. */
struct CampaignConfig
{
    /** Master seed: trial schedules are derived deterministically. */
    std::uint64_t seed = 1;
    /** Number of randomized trials. */
    std::size_t trials = 16;
    /** Systems drawn from (default: all five static kinds). */
    std::vector<core::SystemKind> systems;
    /** Workloads drawn from (default: adpcm). */
    std::vector<std::string> workloads;
    workloads::Scale scale = workloads::Scale::Small;
    /** Worker threads for the underlying sweeps. */
    std::size_t jobs = 1;
    /** Max armed faults per trial schedule (>= 1). */
    std::size_t maxFaults = 3;
    /**
     * Event-kernel domains for every campaign run (1 = serial).
     * Sharded and serial kernels produce byte-identical output
     * (DESIGN.md §8), so triage classes cannot depend on this knob;
     * it exists to exercise the sharded routing under the fault
     * injector. runTrial / --repro replay serially for the same
     * reason.
     */
    std::uint32_t shardDomains = 1;
    /** Fault kinds drawn from (default: every injectable kind). */
    std::vector<FaultKind> faultPool;
};

/** One triaged trial. */
struct TrialResult
{
    std::size_t index = 0;
    core::SystemKind system = core::SystemKind::Fusion;
    std::string workload;
    FaultSchedule schedule;
    TrialOutcome outcome = TrialOutcome::Benign;
    /** Schedule entries that actually fired. */
    std::uint32_t faultsFired = 0;
    /** Bitmask (1 << FaultKind) of kinds that fired. */
    std::uint32_t firedMask = 0;
    /** Error category/component name when the run failed. */
    std::string errorCategory;
    std::string errorComponent;
    std::uint64_t cleanHash = 0;
    std::uint64_t resultHash = 0;
};

/** Per-fault-kind triage counts for the detection-rate table. */
struct KindStats
{
    FaultKind kind = FaultKind::None;
    std::uint64_t armedTrials = 0;
    std::uint64_t firedTrials = 0;
    std::uint64_t detected = 0;
    std::uint64_t hang = 0;
    std::uint64_t silent = 0;
    std::uint64_t crash = 0;
    std::uint64_t benign = 0;
    std::uint64_t perturbed = 0;

    /** detected / (fired trials that needed detection). */
    double detectionRate() const;
};

/** A completed campaign. */
struct CampaignReport
{
    std::uint64_t seed = 0;
    std::vector<TrialResult> trials;
    /** Per-kind table, in FaultKind order, armed kinds only. */
    std::vector<KindStats> kinds;

    std::size_t countOutcome(TrialOutcome outcome) const;
    /** No silent divergence and no crash. */
    bool clean() const;
    /** Render an aligned per-kind detection-rate table. */
    std::string renderTable() const;
    /** Full JSON report (trials + per-kind table + summary). */
    std::string toJson() const;
};

/** Run a campaign. Deterministic for a fixed config. */
CampaignReport runCampaign(const CampaignConfig &cfg);

/**
 * Run one (system, workload, scale, schedule) trial: a clean golden
 * run followed by the injected run, triaged as above. The campaign,
 * the shrinker and fault_campaign --repro all share this path, so a
 * printed reproducer replays the exact campaign behaviour.
 */
TrialResult runTrial(core::SystemKind system,
                     const std::string &workload,
                     workloads::Scale scale,
                     const FaultSchedule &schedule);

/** A minimized failing trial plus its reproducer command line. */
struct ShrinkResult
{
    core::SystemKind system = core::SystemKind::Fusion;
    std::string workload;
    workloads::Scale scale = workloads::Scale::Small;
    FaultSchedule schedule;
    TrialOutcome outcome = TrialOutcome::Benign;
    /** Trials executed while shrinking. */
    std::size_t probes = 0;
    /** One-line fault_campaign --repro invocation. */
    std::string reproCommand;
};

/**
 * Delta-debug a failing trial down to a minimal repro: drop the
 * input scale if the outcome still reproduces, then remove schedule
 * entries one at a time until the schedule is 1-minimal. Returns
 * nullopt when the trial's outcome never needed shrinking (Benign /
 * Perturbed trials have nothing to reproduce).
 */
std::optional<ShrinkResult> shrinkTrial(const TrialResult &trial,
                                        workloads::Scale scale);

} // namespace fusion::guard

#endif // FUSION_SIM_GUARD_CAMPAIGN_HH
