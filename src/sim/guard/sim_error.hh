/**
 * @file
 * Typed simulation errors. A SimError carries what went wrong
 * (category), where (component), when (simulated tick) and a
 * structured diagnostic dump, so a failed sweep job can be recorded
 * in the SweepReport instead of aborting the whole process.
 */

#ifndef FUSION_SIM_GUARD_SIM_ERROR_HH
#define FUSION_SIM_GUARD_SIM_ERROR_HH

#include <exception>
#include <string>

#include "sim/types.hh"

namespace fusion
{

class EventQueue;

namespace guard
{

/** Broad failure taxonomy (docs/HARDENING.md). */
enum class ErrorCategory : std::uint8_t
{
    Assertion,  ///< fusion_panic / fusion_assert tripped
    Deadlock,   ///< event queue drained before the program finished
    NoProgress, ///< outstanding work but no retirements for N ticks
    CycleBudget,///< simulated time exceeded GuardConfig::maxCycles
    WallClock,  ///< wall-clock time exceeded GuardConfig::maxWallMs
    Invariant,  ///< an InvariantChecker reported a violation
    Internal,   ///< unexpected C++ exception inside a sweep worker
};

/** Stable short name used in JSON reports. */
const char *errorCategoryName(ErrorCategory c);

/** A structured, reportable simulation failure. */
struct SimError
{
    ErrorCategory category = ErrorCategory::Internal;
    /** Component or source location that raised the error. */
    std::string component;
    /** Human-readable one-line description. */
    std::string message;
    /** Simulated tick at the point of failure (0 if unknown). */
    Tick tick = 0;
    /** Multi-line diagnostic dump (watchdog snapshot, violations). */
    std::string diagnostic;

    /** Render as a JSON object (stable field order). */
    std::string toJson() const;
};

/** Exception wrapper used to unwind out of a poisoned simulation. */
class SimErrorException : public std::exception
{
  public:
    explicit SimErrorException(SimError e);

    const SimError &error() const { return _error; }
    const char *what() const noexcept override { return _what.c_str(); }

  private:
    SimError _error;
    std::string _what;
};

/**
 * RAII marker binding the calling thread to an event queue. While a
 * scope is active, fusion_panic unwinds as a SimErrorException
 * stamped with the queue's simulated tick (so runProgram/runSweep
 * can record the failure); with no scope bound — unit tests poking
 * raw components — panic keeps its historical abort() behaviour.
 * One scope per running System; sweep worker threads each carry
 * their own thread-local binding.
 */
class TickScope
{
  public:
    explicit TickScope(const EventQueue &eq);
    ~TickScope();
    TickScope(const TickScope &) = delete;
    TickScope &operator=(const TickScope &) = delete;

    /** True when the calling thread is inside a TickScope. */
    static bool active();
    /** Tick of the queue bound to this thread, or 0 when unbound. */
    static Tick currentTick();

  private:
    const EventQueue *_prev;
};

} // namespace guard
} // namespace fusion

#endif // FUSION_SIM_GUARD_SIM_ERROR_HH
