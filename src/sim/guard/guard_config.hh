/**
 * @file
 * Configuration knobs for the simulation hardening layer: watchdog
 * budgets, periodic invariant checking, and the test-only fault
 * injection plan. All knobs default to off so a default-configured
 * run is byte-identical to one built without the guard subsystem.
 */

#ifndef FUSION_SIM_GUARD_GUARD_CONFIG_HH
#define FUSION_SIM_GUARD_GUARD_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace fusion::guard
{

/**
 * Test-only fault kinds, injected at well-defined protocol points to
 * prove the watchdog and invariant checkers actually fire.
 */
enum class FaultKind : std::uint8_t
{
    None,          ///< no injection (production default)
    LeakMshr,      ///< L0X books an MSHR but never sends the request
    DropWriteback, ///< L0X cleans a dirty line without writing back
    DelayGrant,    ///< L1X delays one lease grant by FaultPlan::delay
    CorruptLease,  ///< L0X inflates a granted lease past its bound
};

/** One planned fault: which kind, and when it triggers. */
struct FaultPlan
{
    FaultKind kind = FaultKind::None;
    /** Fire on the Nth opportunity (0 = the first). */
    std::uint64_t triggerAfter = 0;
    /** Extra cycles for DelayGrant / lease inflation for CorruptLease. */
    Cycles delay = 0;
};

/** All hardening knobs carried inside SystemConfig. */
struct GuardConfig
{
    /** Trip when simulated time would exceed this tick (0 = off). */
    Tick maxCycles = 0;
    /** Trip when wall-clock time exceeds this many ms (0 = off). */
    std::uint64_t maxWallMs = 0;
    /**
     * Trip when this many ticks elapse with outstanding transactions
     * (MSHRs, DMA transfers) but no retirements (0 = off).
     */
    Tick noProgressTicks = 0;
    /** Run registered invariant checkers every K cycles (0 = off). */
    Tick invariantPeriod = 0;
    /** Run invariant checkers once after the event queue drains. */
    bool invariantsAtEnd = false;
    /** Test-only fault injection plan. */
    FaultPlan fault;

    /** True when any liveness or safety check is enabled. */
    bool
    anyEnabled() const
    {
        return maxCycles != 0 || maxWallMs != 0 ||
               noProgressTicks != 0 || invariantPeriod != 0 ||
               invariantsAtEnd;
    }
};

} // namespace fusion::guard

#endif // FUSION_SIM_GUARD_GUARD_CONFIG_HH
