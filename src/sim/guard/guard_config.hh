/**
 * @file
 * Configuration knobs for the simulation hardening layer: watchdog
 * budgets, periodic invariant checking, and the test-only fault
 * injection schedule. All knobs default to off so a default-configured
 * run is byte-identical to one built without the guard subsystem.
 */

#ifndef FUSION_SIM_GUARD_GUARD_CONFIG_HH
#define FUSION_SIM_GUARD_GUARD_CONFIG_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hh"

namespace fusion::guard
{

/**
 * Test-only fault kinds, injected at well-defined protocol points to
 * prove the watchdog and invariant checkers actually fire.
 */
enum class FaultKind : std::uint8_t
{
    None,          ///< no injection (production default)
    LeakMshr,      ///< L0X books an MSHR but never sends the request
    DropWriteback, ///< L0X cleans a dirty line without writing back
    DelayGrant,    ///< L1X delays one lease grant by ArmedFault::delay
    CorruptLease,  ///< L0X inflates a granted lease past its bound
    DropFlit,      ///< a link books a message but never delivers it
    DupFlit,       ///< a link retransmits one message's flits
    ReorderFlit,   ///< a link delays one delivery past later traffic
    TruncateDma,   ///< a DMA op silently skips its remaining lines
    StallDma,      ///< a DMA line completion stalls by delay cycles
    CorruptDir,    ///< LLC directory forgets an owner/sharer bit
    StaleHostL1,   ///< host L1 ignores an invalidation, keeps stale data
};

/** Number of FaultKind values (for bitmask / table sizing). */
inline constexpr std::size_t kFaultKindCount = 12;

/** Canonical CLI name for a fault kind ("leak-mshr", ...). */
const char *faultKindName(FaultKind kind);

/** Parse a CLI fault-kind name; false when unrecognized. */
bool parseFaultKind(std::string_view name, FaultKind &out);

/**
 * True for kinds that only perturb *timing* (delays / reordering on
 * architecturally legal paths): a run where exclusively such faults
 * fired may legitimately produce different cycle counts and output
 * hashes without any safety property being violated. All other kinds
 * corrupt state or lose work and must be detected.
 */
bool faultPerturbsTimingOnly(FaultKind kind);

/** One planned fault: which kind, and when it triggers. */
struct FaultPlan
{
    FaultKind kind = FaultKind::None;
    /** Fire on the Nth opportunity (0 = the first). */
    std::uint64_t triggerAfter = 0;
    /** Extra cycles for DelayGrant / lease inflation for CorruptLease. */
    Cycles delay = 0;
};

/**
 * One armed fault inside a FaultSchedule. Like FaultPlan but with an
 * optional per-opportunity firing probability: once the trigger count
 * is reached, every further opportunity fires with probability
 * @p probability (drawn from the schedule's SplitMix64 stream), so
 * p = 1.0 reproduces the deterministic FaultPlan behaviour exactly.
 */
struct ArmedFault
{
    FaultKind kind = FaultKind::None;
    /** Eligible from the (triggerAfter+1)-th opportunity onwards. */
    std::uint64_t triggerAfter = 0;
    /** Extra cycles for delay-style kinds (grant/reorder/stall). */
    Cycles delay = 0;
    /** Per-opportunity firing probability once eligible. */
    double probability = 1.0;
};

/** Render one armed fault as a --fault spec (kind[:after[:delay]]). */
std::string faultSpec(const ArmedFault &fault);

/**
 * Parse a --fault spec "KIND[:after[:delay[:prob]]]".
 * @return false (out untouched) when the spec is malformed.
 */
bool parseFaultSpec(std::string_view spec, ArmedFault &out);

/**
 * A seeded multi-fault schedule. Each armed fault keeps independent
 * trigger/fired state inside the GuardRegistry; probability draws
 * come from one SplitMix64 stream seeded here, so a (schedule, seed)
 * pair replays identically across runs and worker threads.
 */
struct FaultSchedule
{
    std::vector<ArmedFault> faults;
    /** Seed for the probability stream (sim/rng.hh SplitMix64). */
    std::uint64_t seed = 0;

    bool empty() const { return faults.empty(); }

    /** Fluent helper: arm one more fault. */
    FaultSchedule &
    arm(FaultKind kind, std::uint64_t trigger_after = 0,
        Cycles delay = 0, double probability = 1.0)
    {
        faults.push_back({kind, trigger_after, delay, probability});
        return *this;
    }
};

/** All hardening knobs carried inside SystemConfig. */
struct GuardConfig
{
    /** Trip when simulated time would exceed this tick (0 = off). */
    Tick maxCycles = 0;
    /** Trip when wall-clock time exceeds this many ms (0 = off). */
    std::uint64_t maxWallMs = 0;
    /**
     * Trip when this many ticks elapse with outstanding transactions
     * (MSHRs, DMA transfers) but no retirements (0 = off).
     */
    Tick noProgressTicks = 0;
    /** Run registered invariant checkers every K cycles (0 = off). */
    Tick invariantPeriod = 0;
    /** Run invariant checkers once after the event queue drains. */
    bool invariantsAtEnd = false;
    /**
     * Back-compat single-fault plan. Merged into the effective
     * schedule by GuardRegistry::configure as one always-fire entry;
     * prefer @ref schedule for new code.
     */
    FaultPlan fault;
    /** Test-only multi-fault injection schedule. */
    FaultSchedule schedule;

    /** True when any fault (legacy plan or schedule) is armed. */
    bool
    faultArmed() const
    {
        return fault.kind != FaultKind::None || !schedule.empty();
    }

    /** True when any liveness, safety or fault hook is enabled. */
    bool
    anyEnabled() const
    {
        return maxCycles != 0 || maxWallMs != 0 ||
               noProgressTicks != 0 || invariantPeriod != 0 ||
               invariantsAtEnd || faultArmed();
    }
};

} // namespace fusion::guard

#endif // FUSION_SIM_GUARD_GUARD_CONFIG_HH
