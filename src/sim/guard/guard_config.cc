/**
 * @file
 * Fault-kind naming, spec parsing and the timing-only classification
 * used by campaign triage.
 */

#include "sim/guard/guard_config.hh"

#include <array>
#include <charconv>
#include <sstream>

namespace fusion::guard
{

namespace
{

struct KindName
{
    FaultKind kind;
    const char *name;
};

constexpr std::array<KindName, kFaultKindCount> kKindNames{{
    {FaultKind::None, "none"},
    {FaultKind::LeakMshr, "leak-mshr"},
    {FaultKind::DropWriteback, "drop-writeback"},
    {FaultKind::DelayGrant, "delay-grant"},
    {FaultKind::CorruptLease, "corrupt-lease"},
    {FaultKind::DropFlit, "drop-flit"},
    {FaultKind::DupFlit, "dup-flit"},
    {FaultKind::ReorderFlit, "reorder-flit"},
    {FaultKind::TruncateDma, "dma-truncate"},
    {FaultKind::StallDma, "dma-stall"},
    {FaultKind::CorruptDir, "corrupt-dir"},
    {FaultKind::StaleHostL1, "stale-host-l1"},
}};

bool
parseU64(std::string_view text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    auto [ptr, ec] = std::from_chars(text.data(),
                                     text.data() + text.size(), out);
    return ec == std::errc() && ptr == text.data() + text.size();
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    for (const auto &entry : kKindNames)
        if (entry.kind == kind)
            return entry.name;
    return "unknown";
}

bool
parseFaultKind(std::string_view name, FaultKind &out)
{
    for (const auto &entry : kKindNames) {
        if (name == entry.name) {
            out = entry.kind;
            return true;
        }
    }
    return false;
}

bool
faultPerturbsTimingOnly(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DelayGrant:
      case FaultKind::ReorderFlit:
      case FaultKind::StallDma:
        return true;
      default:
        return false;
    }
}

std::string
faultSpec(const ArmedFault &fault)
{
    std::ostringstream os;
    os << faultKindName(fault.kind) << ':' << fault.triggerAfter << ':'
       << fault.delay;
    if (fault.probability < 1.0)
        os << ':' << fault.probability;
    return os.str();
}

bool
parseFaultSpec(std::string_view spec, ArmedFault &out)
{
    std::array<std::string_view, 4> fields{};
    std::size_t nfields = 0;
    while (nfields < fields.size()) {
        std::size_t colon = spec.find(':');
        fields[nfields++] = spec.substr(0, colon);
        if (colon == std::string_view::npos)
            break;
        spec.remove_prefix(colon + 1);
        if (nfields == fields.size())
            return false; // more than four fields
    }

    ArmedFault parsed;
    if (!parseFaultKind(fields[0], parsed.kind) ||
        parsed.kind == FaultKind::None)
        return false;
    if (nfields > 1 && !parseU64(fields[1], parsed.triggerAfter))
        return false;
    if (nfields > 2) {
        std::uint64_t delay = 0;
        if (!parseU64(fields[2], delay))
            return false;
        parsed.delay = static_cast<Cycles>(delay);
    }
    if (nfields > 3) {
        // Probability as a percentage would be ambiguous; accept a
        // plain decimal in [0, 1].
        try {
            std::size_t used = 0;
            parsed.probability = std::stod(std::string(fields[3]),
                                           &used);
            if (used != fields[3].size())
                return false;
        } catch (...) {
            return false;
        }
        if (parsed.probability < 0.0 || parsed.probability > 1.0)
            return false;
    }
    out = parsed;
    return true;
}

} // namespace fusion::guard
