/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * All timing in the FUSION simulator is driven by one EventQueue.
 * Events scheduled for the same tick fire in (priority, insertion
 * order), which makes every run bit-reproducible regardless of the
 * container behaviour of the host standard library.
 */

#ifndef FUSION_SIM_EVENT_QUEUE_HH
#define FUSION_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace fusion
{

/** Callback type for scheduled events. */
using EventFn = std::function<void()>;

/**
 * Standard event priorities. Lower values fire first within a tick.
 * The defaults mirror gem5's convention that state-updating
 * "maintenance" events precede new work issued in the same cycle.
 */
enum class EventPriority : int
{
    Maintenance = -10, ///< lease expiry sweeps, unlock processing
    Default = 0,       ///< ordinary component events
    Stats = 10,        ///< end-of-cycle accounting
};

/**
 * The simulation event queue.
 *
 * schedule() enqueues a callback at an absolute tick; run() pops
 * events in order until the queue drains or a stop condition is hit.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn to run at absolute tick @p when.
     * @pre when >= now()
     */
    void
    schedule(Tick when, EventFn fn,
             EventPriority pri = EventPriority::Default)
    {
        fusion_assert(when >= _now, "schedule in the past: when=", when,
                      " now=", _now);
        _heap.push(Entry{when, static_cast<int>(pri), _nextSeq++,
                         std::move(fn)});
    }

    /** Schedule @p fn @p delta ticks in the future. */
    void
    scheduleIn(Cycles delta, EventFn fn,
               EventPriority pri = EventPriority::Default)
    {
        schedule(_now + delta, std::move(fn), pri);
    }

    /** True when no events are pending. */
    bool empty() const { return _heap.empty(); }

    /** Tick of the next pending event (kTickNever when empty). */
    Tick
    headTick() const
    {
        return _heap.empty() ? kTickNever : _heap.top().when;
    }

    /** Number of pending events. */
    std::size_t pending() const { return _heap.size(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Run until the queue drains.
     * @return the tick of the last executed event.
     */
    Tick
    run()
    {
        return runUntil(kTickNever);
    }

    /**
     * Run until the queue drains or the next event is past @p limit.
     * Events *at* @p limit still execute.
     * @return the current tick when stopping.
     */
    Tick
    runUntil(Tick limit)
    {
        while (!_heap.empty() && _heap.top().when <= limit) {
            Entry e = _heap.top();
            _heap.pop();
            fusion_assert(e.when >= _now, "event queue went backwards");
            _now = e.when;
            ++_executed;
            e.fn();
        }
        return _now;
    }

    /**
     * Execute exactly one event if any is pending.
     * @return true if an event ran.
     */
    bool
    step()
    {
        if (_heap.empty())
            return false;
        Entry e = _heap.top();
        _heap.pop();
        _now = e.when;
        ++_executed;
        e.fn();
        return true;
    }

    /** Reset time and drop all pending events (for unit tests). */
    void
    reset()
    {
        _heap = decltype(_heap)();
        _now = 0;
        _nextSeq = 0;
        _executed = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        int pri;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.pri != b.pri)
                return a.pri > b.pri;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
};

} // namespace fusion

#endif // FUSION_SIM_EVENT_QUEUE_HH
