/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * All timing in the FUSION simulator is driven by one EventQueue.
 * Events scheduled for the same tick fire in (priority, insertion
 * order), which makes every run bit-reproducible regardless of the
 * container behaviour of the host standard library.
 *
 * The queue is a hybrid calendar/bucket queue. Nearly every event in
 * this simulator lands 0–7 ticks in the future (link latencies,
 * bank/SRAM latencies, next-cycle re-pumps), so near-future events
 * go into a power-of-two circular array of per-tick buckets — O(1)
 * scheduling, with a 64-bit occupancy mask giving O(1) next-tick
 * lookup. Within a bucket, events sharing a priority fire in
 * insertion order, which append order already provides — so buckets
 * are plain FIFO vectors, and only a bucket that actually mixes
 * priorities (or receives a late spill migration) pays one
 * sort-on-demand before its first pop. Far-future events (lease
 * expiries, DRAM activates, DMA window turnarounds) spill into a
 * conventional binary heap and migrate into the calendar as the
 * clock approaches them. Events are *moved* in and out of both
 * structures (InlineEvent is move-only) — closures are constructed
 * directly in bucket storage and relocated exactly once on pop, and
 * for the common capture sizes never touch the allocator.
 *
 * Ordering semantics are bit-identical to the classic single-heap
 * implementation: global (when, priority, sequence) order, proven by
 * the randomized property test in tests/test_event_queue.cc.
 */

#ifndef FUSION_SIM_EVENT_QUEUE_HH
#define FUSION_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/inline_event.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace fusion
{

/** Callback type for scheduled events (allocation-free closure). */
using EventFn = InlineEvent;

namespace shard
{

/**
 * Ordered shard router (src/sim/shard/router.hh). When a run is
 * sharded (SystemConfig::shardDomains > 1) the system facade queue
 * delegates to the router, which owns one EventQueue per domain and
 * executes the globally least (when, priority, sequence) event
 * across them — the same total order a single queue produces, so
 * serial and sharded runs stay byte-identical. The bridges below
 * keep this header free of a shard dependency: they are defined in
 * router.cc and only reached when a router is installed.
 */
class Router;

void routerSchedule(Router &r, Tick when, int pri, InlineEvent &&fn);
Tick routerNow(const Router &r);
Tick routerHeadTick(const Router &r);
std::size_t routerPending(const Router &r);
std::uint64_t routerExecuted(const Router &r);
bool routerStep(Router &r);

} // namespace shard

/**
 * Standard event priorities. Lower values fire first within a tick.
 * The defaults mirror gem5's convention that state-updating
 * "maintenance" events precede new work issued in the same cycle.
 */
enum class EventPriority : int
{
    Maintenance = -10, ///< lease expiry sweeps, unlock processing
    Default = 0,       ///< ordinary component events
    Stats = 10,        ///< end-of-cycle accounting
};

/**
 * The simulation event queue.
 *
 * schedule() enqueues a callback at an absolute tick; run() pops
 * events in order until the queue drains or a stop condition is hit.
 */
class EventQueue
{
  public:
    /** Calendar span in ticks; must be a power of two. Events within
     *  [base, base + kWindow) of the clock are bucketed, later ones
     *  spill to the heap. */
    static constexpr Tick kWindow = 64;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Install (or clear) a shard router. While set, this queue acts
     * as a facade: scheduling and stepping are forwarded to the
     * router, which dispatches onto its per-domain queues in exact
     * global (when, priority, sequence) order. The serial path pays
     * one predictable null check per operation.
     */
    void setShardRouter(shard::Router *r) { _router = r; }

    /** True when a shard router is installed (facade mode). */
    bool sharded() const { return _router != nullptr; }

    /**
     * Redirect sequence-number assignment to an external counter.
     * The shard router points every domain queue at one shared
     * counter so (when, priority, sequence) keys stay globally
     * comparable — and each queue still sees monotonically
     * increasing values, preserving the bucket FIFO invariant.
     */
    void setSeqSource(std::uint64_t *src) { _seqSrc = src; }

    /** Current simulated time. */
    Tick
    now() const
    {
        if (_router != nullptr) [[unlikely]]
            return shard::routerNow(*_router);
        return _now;
    }

    /**
     * Schedule @p fn to run at absolute tick @p when. Templated on
     * the callable so the closure is constructed directly in queue
     * storage (no intermediate InlineEvent move).
     * @pre when >= now()
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn,
             EventPriority pri = EventPriority::Default)
    {
        if (_router != nullptr) [[unlikely]] {
            shard::routerSchedule(*_router, when,
                                  static_cast<int>(pri),
                                  EventFn(std::forward<F>(fn)));
            return;
        }
        fusion_assert(when >= _now, "schedule in the past: when=", when,
                      " now=", _now);
        // _base <= _now at every external call and during event
        // execution, so the membership test below keeps all bucketed
        // events inside one window-length range (unique tick per
        // bucket slot).
        if (when - _base < kWindow) {
            auto idx = static_cast<std::size_t>(when & kMask);
            auto &b = _buckets[idx];
            b.v.emplace_back(when, static_cast<int>(pri), nextSeq(),
                             std::forward<F>(fn));
            b.noteAppend();
            _occupied |= std::uint64_t{1} << idx;
        } else {
            _spill.emplace_back(when, static_cast<int>(pri),
                                nextSeq(), std::forward<F>(fn));
            std::push_heap(_spill.begin(), _spill.end(), Later{});
        }
        ++_pending;
    }

    /** Schedule @p fn @p delta ticks in the future. */
    template <typename F>
    void
    scheduleIn(Cycles delta, F &&fn,
               EventPriority pri = EventPriority::Default)
    {
        schedule(now() + delta, std::forward<F>(fn), pri);
    }

    /** True when no events are pending. */
    bool
    empty() const
    {
        if (_router != nullptr) [[unlikely]]
            return shard::routerPending(*_router) == 0;
        return _pending == 0;
    }

    /** Tick of the next pending event (kTickNever when empty). */
    Tick
    headTick() const
    {
        if (_router != nullptr) [[unlikely]]
            return shard::routerHeadTick(*_router);
        Tick t = nextBucketTick();
        if (!_spill.empty())
            t = std::min(t, _spill.front().when);
        return t;
    }

    /** Number of pending events. */
    std::size_t
    pending() const
    {
        if (_router != nullptr) [[unlikely]]
            return shard::routerPending(*_router);
        return _pending;
    }

    /** Total events executed so far. */
    std::uint64_t
    executed() const
    {
        if (_router != nullptr) [[unlikely]]
            return shard::routerExecuted(*_router);
        return _executed;
    }

    /**
     * Key of the next event to pop — (when, priority, sequence) —
     * without executing it. Non-mutating except for an on-demand
     * bucket sort (deliberately *not* the window jump advanceTo()
     * performs: jumping the window outside a pop would let a later
     * near-future schedule share a bucket slot with a far-future
     * tick). The shard router peeks every domain queue to pick the
     * global minimum.
     * @return false when the queue is empty.
     */
    bool
    peekHead(Tick &when, int &pri, std::uint64_t &seq)
    {
        if (_pending == 0)
            return false;
        bool have = false;
        Tick bt = nextBucketTick();
        if (bt != kTickNever) {
            auto idx = static_cast<std::size_t>(bt & kMask);
            auto &b = _buckets[idx];
            if (b.dirty) {
                std::sort(
                    b.v.begin() + static_cast<std::ptrdiff_t>(b.head),
                    b.v.end(), EarlierWithinTick{});
                b.dirty = false;
            }
            const Entry &e = b.v[b.head];
            when = e.when;
            pri = e.pri;
            seq = e.seq;
            have = true;
        }
        if (!_spill.empty()) {
            // The heap front is the (when, pri, seq)-least spill
            // entry, so comparing it against the bucket head yields
            // the global minimum.
            const Entry &s = _spill.front();
            if (!have || s.when < when ||
                (s.when == when &&
                 (s.pri < pri || (s.pri == pri && s.seq < seq)))) {
                when = s.when;
                pri = s.pri;
                seq = s.seq;
            }
        }
        return true;
    }

    /**
     * Run until the queue drains.
     * @return the tick of the last executed event.
     */
    Tick
    run()
    {
        return runUntil(kTickNever);
    }

    /**
     * Run until the queue drains or the next event is past @p limit.
     * Events *at* @p limit still execute.
     * @return the current tick when stopping.
     */
    Tick
    runUntil(Tick limit)
    {
        fusion_assert(_router == nullptr,
                      "runUntil on a sharded facade queue; drive the "
                      "router via step()/empty() instead");
        while (_pending != 0) {
            Tick t = advanceTo(limit);
            if (t == kTickNever)
                break;
            Entry e = popBucket(t);
            fusion_assert(e.when >= _now,
                          "event queue went backwards");
            _now = e.when;
            ++_executed;
            e.fn();
        }
        return _now;
    }

    /**
     * Execute exactly one event if any is pending.
     * @return true if an event ran.
     */
    bool
    step()
    {
        if (_router != nullptr) [[unlikely]]
            return shard::routerStep(*_router);
        if (_pending == 0)
            return false;
        Tick t = advanceTo(kTickNever);
        Entry e = popBucket(t);
        fusion_assert(e.when >= _now, "event queue went backwards");
        _now = e.when;
        ++_executed;
        e.fn();
        return true;
    }

    /** Reset time and drop all pending events (for unit tests). */
    void
    reset()
    {
        for (auto &b : _buckets) {
            b.v.clear();
            b.head = 0;
            b.dirty = false;
        }
        _occupied = 0;
        _spill.clear();
        _pending = 0;
        _now = 0;
        _base = 0;
        _nextSeq = 0;
        _executed = 0;
    }

  private:
    static constexpr Tick kMask = kWindow - 1;
    static_assert((kWindow & kMask) == 0,
                  "calendar window must be a power of two");

    /** Next sequence number, drawn from the shared source when the
     *  shard router re-pointed it. */
    std::uint64_t
    nextSeq()
    {
        return _seqSrc != nullptr ? (*_seqSrc)++ : _nextSeq++;
    }

    struct Entry
    {
        Tick when;
        int pri;
        std::uint64_t seq;
        EventFn fn;
    };

    /** Sort comparator inside one bucket: (pri, seq) order (all
     *  live entries of a bucket share one tick). */
    struct EarlierWithinTick
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.pri != b.pri)
                return a.pri < b.pri;
            return a.seq < b.seq;
        }
    };

    /** Spill-heap comparator: full (when, pri, seq) order. */
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.pri != b.pri)
                return a.pri > b.pri;
            return a.seq > b.seq;
        }
    };

    /**
     * One calendar slot. Appends are pops for the common case: fresh
     * schedules carry monotonically increasing sequence numbers, so
     * same-priority events are already in (pri, seq) order and the
     * bucket acts as a plain FIFO ([head, v.end()) is the live
     * range). An append that breaks the order — a lower priority, or
     * a spill migration carrying an old sequence number — marks the
     * bucket dirty and the next pop re-sorts the live range once.
     */
    struct Bucket
    {
        std::vector<Entry> v;
        std::size_t head = 0;
        bool dirty = false;

        /** Update @c dirty after an emplace_back on @c v. */
        void
        noteAppend()
        {
            auto n = v.size();
            if (n - head > 1) {
                const Entry &prev = v[n - 2];
                const Entry &cur = v[n - 1];
                if (cur.pri < prev.pri ||
                    (cur.pri == prev.pri && cur.seq < prev.seq))
                    dirty = true;
            }
        }
    };

    void
    pushBucket(Entry &&e)
    {
        auto idx = static_cast<std::size_t>(e.when & kMask);
        auto &b = _buckets[idx];
        b.v.push_back(std::move(e));
        b.noteAppend();
        _occupied |= std::uint64_t{1} << idx;
    }

    /** Move spill events whose tick entered the calendar window. */
    void
    migrateNear()
    {
        while (!_spill.empty() &&
               _spill.front().when - _base < kWindow) {
            std::pop_heap(_spill.begin(), _spill.end(), Later{});
            Entry e = std::move(_spill.back());
            _spill.pop_back();
            pushBucket(std::move(e));
        }
    }

    /** Smallest bucketed tick, kTickNever when the calendar is
     *  empty. All bucketed ticks lie in [_base, _base + kWindow), so
     *  the first occupied slot at or after _base (cyclically) is the
     *  minimum. */
    Tick
    nextBucketTick() const
    {
        if (_occupied == 0)
            return kTickNever;
        auto base = static_cast<int>(_base & kMask);
        std::uint64_t rot = std::rotr(_occupied, base);
        return _base + static_cast<Tick>(std::countr_zero(rot));
    }

    /**
     * Find the tick of the next event, migrating spill events into
     * the calendar as the window advances. Returns kTickNever when
     * the next event lies past @p limit (the queue is untouched
     * beyond harmless migration in that case).
     * @pre _pending != 0
     */
    Tick
    advanceTo(Tick limit)
    {
        // Snap the window base to the clock: every bucketed event is
        // >= _now, so this only widens the usable window.
        _base = _now;
        migrateNear();
        Tick t = nextBucketTick();
        if (t == kTickNever) {
            // Everything pending is far-future: jump the window.
            Tick t0 = _spill.front().when;
            if (t0 > limit)
                return kTickNever;
            _base = t0;
            migrateNear();
            return t0;
        }
        return t <= limit ? t : kTickNever;
    }

    /** Pop the (priority, seq)-least event of bucketed tick @p t. */
    Entry
    popBucket(Tick t)
    {
        auto idx = static_cast<std::size_t>(t & kMask);
        auto &b = _buckets[idx];
        if (b.dirty) {
            std::sort(b.v.begin() + static_cast<std::ptrdiff_t>(b.head),
                      b.v.end(), EarlierWithinTick{});
            b.dirty = false;
        }
        Entry e = std::move(b.v[b.head]);
        if (++b.head == b.v.size()) {
            b.v.clear(); // keeps capacity; steady state stays alloc-free
            b.head = 0;
            _occupied &= ~(std::uint64_t{1} << idx);
        }
        --_pending;
        return e;
    }

    std::array<Bucket, kWindow> _buckets;
    std::uint64_t _occupied = 0; ///< bit i: bucket i non-empty
    std::vector<Entry> _spill;   ///< far-future min-heap
    std::size_t _pending = 0;
    Tick _now = 0;
    Tick _base = 0; ///< calendar window base (<= _now at rest)
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::uint64_t *_seqSrc = nullptr;  ///< shared seq counter, if any
    shard::Router *_router = nullptr;  ///< facade mode, if sharded
};

} // namespace fusion

#endif // FUSION_SIM_EVENT_QUEUE_HH
