#include "sim/stats.hh"

#include <iomanip>

namespace fusion::stats
{

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[k, s] : _scalars) {
        os << base << "." << k << " " << std::setprecision(12)
           << s.value() << "\n";
    }
    for (const auto &[k, h] : _histograms) {
        os << base << "." << k << ".samples " << h.samples() << "\n";
        os << base << "." << k << ".mean " << h.mean() << "\n";
        os << base << "." << k << ".min " << h.minValue() << "\n";
        os << base << "." << k << ".max " << h.maxValue() << "\n";
    }
    for (const auto &[k, g] : _children)
        g.dump(os, base);
}

} // namespace fusion::stats
