/**
 * @file
 * Lightweight statistics package.
 *
 * Components own Scalar / Histogram statistics registered in a
 * StatGroup tree; Registry::dump() renders the whole tree. The design
 * follows the gem5 stats package in miniature: stats are named,
 * hierarchical, and cheap to update on the hot path.
 */

#ifndef FUSION_SIM_STATS_HH
#define FUSION_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace fusion::stats
{

/** A monotonically accumulating scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }
    void set(double v) { _value = v; }
    double value() const { return _value; }
    void reset() { _value = 0.0; }

  private:
    double _value = 0.0;
};

/** A fixed-bucket histogram over a linear range with overflow bins. */
class Histogram
{
  public:
    Histogram() : Histogram(0.0, 1.0, 1) {}

    /** Buckets span [lo, hi) in @p buckets equal steps. */
    Histogram(double lo, double hi, std::size_t buckets)
        : _lo(lo), _hi(hi),
          _bucketScale(static_cast<double>(buckets) / (hi - lo)),
          _counts(buckets, 0)
    {
        fusion_assert(hi > lo && buckets > 0, "bad histogram range");
    }

    /** Record one sample. */
    void
    sample(double v)
    {
        ++_samples;
        _sum += v;
        _min = _samples == 1 ? v : std::min(_min, v);
        _max = _samples == 1 ? v : std::max(_max, v);
        if (v < _lo) {
            ++_underflow;
        } else if (v >= _hi) {
            ++_overflow;
        } else {
            // One multiply by the precomputed buckets/(hi-lo) scale
            // instead of a subtract + divide per sample.
            auto idx =
                static_cast<std::size_t>((v - _lo) * _bucketScale);
            ++_counts[std::min(idx, _counts.size() - 1)];
        }
    }

    /**
     * Estimate the value at percentile @p p (0..100) by linear
     * interpolation. Mass inside a bucket interpolates across the
     * bucket's bounds; underflow mass interpolates over
     * [minValue, lo) and overflow mass over [hi, maxValue], so the
     * estimate is defined (and bounded by the observed extremes)
     * even when samples fell outside the bucketed range.
     */
    double
    percentile(double p) const
    {
        if (_samples == 0)
            return 0.0;
        p = std::min(std::max(p, 0.0), 100.0);
        // Continuous rank: p==0 -> min, p==100 -> max.
        double rank = p / 100.0 * static_cast<double>(_samples);
        double seen = 0.0;

        auto interp = [&](double count, double lo, double hi) {
            // Fraction of this bin's mass below the target rank.
            double f = count > 0 ? (rank - seen) / count : 0.0;
            f = std::min(std::max(f, 0.0), 1.0);
            return lo + f * (hi - lo);
        };

        if (_underflow && rank <= seen + _underflow)
            return interp(static_cast<double>(_underflow), _min,
                          std::min(_lo, _max));
        seen += static_cast<double>(_underflow);

        double width = (_hi - _lo) / static_cast<double>(_counts.size());
        for (std::size_t b = 0; b < _counts.size(); ++b) {
            double count = static_cast<double>(_counts[b]);
            if (count > 0 && rank <= seen + count) {
                double blo = _lo + width * static_cast<double>(b);
                // Clamp to observed extremes so a single-sample
                // bucket reports the sample, not the bucket edge.
                return std::min(std::max(interp(count, blo, blo + width),
                                         _min),
                                _max);
            }
            seen += count;
        }

        if (_overflow)
            return interp(static_cast<double>(_overflow),
                          std::max(_hi, _min), _max);
        return _max;
    }

    std::uint64_t samples() const { return _samples; }
    double sum() const { return _sum; }
    double mean() const { return _samples ? _sum / _samples : 0.0; }
    double minValue() const { return _samples ? _min : 0.0; }
    double maxValue() const { return _samples ? _max : 0.0; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    const std::vector<std::uint64_t> &buckets() const { return _counts; }
    double bucketLow() const { return _lo; }
    double bucketHigh() const { return _hi; }

    void
    reset()
    {
        _samples = 0;
        _sum = 0.0;
        _min = _max = 0.0;
        _underflow = _overflow = 0;
        std::fill(_counts.begin(), _counts.end(), 0);
    }

  private:
    double _lo;
    double _hi;
    double _bucketScale; ///< buckets / (hi - lo), precomputed
    std::uint64_t _samples = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::vector<std::uint64_t> _counts;
};

/**
 * A named group of statistics. Groups nest; the full name of a stat
 * is the dot-joined path of its ancestors.
 */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    /** Create (or fetch) a child group. */
    Group &
    child(const std::string &name)
    {
        auto [it, inserted] = _children.try_emplace(name, name);
        return it->second;
    }

    /** Create (or fetch) a named scalar. */
    Scalar &
    scalar(const std::string &name)
    {
        return _scalars[name];
    }

    /** Create (or fetch) a named histogram; shape set on creation. */
    Histogram &
    histogram(const std::string &name, double lo = 0.0, double hi = 1.0,
              std::size_t buckets = 16)
    {
        auto it = _histograms.find(name);
        if (it == _histograms.end())
            it = _histograms.emplace(name, Histogram(lo, hi, buckets))
                     .first;
        return it->second;
    }

    /** Read a scalar by name; panics if absent (test helper). */
    double
    scalarValue(const std::string &name) const
    {
        auto it = _scalars.find(name);
        fusion_assert(it != _scalars.end(), "no scalar ", _name, ".",
                      name);
        return it->second.value();
    }

    bool hasScalar(const std::string &name) const
    {
        return _scalars.count(name) != 0;
    }

    const std::string &name() const { return _name; }
    const std::map<std::string, Scalar> &scalars() const
    {
        return _scalars;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return _histograms;
    }
    const std::map<std::string, Group> &children() const
    {
        return _children;
    }

    /** Zero every stat in this group and all descendants. */
    void
    reset()
    {
        for (auto &[k, s] : _scalars)
            s.reset();
        for (auto &[k, h] : _histograms)
            h.reset();
        for (auto &[k, g] : _children)
            g.reset();
    }

    /** Render this subtree, one "path value" line per stat. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::string _name;
    std::map<std::string, Scalar> _scalars;
    std::map<std::string, Histogram> _histograms;
    std::map<std::string, Group> _children;
};

/** The root of the stats tree for one simulated system. */
class Registry
{
  public:
    Registry() : _root("sim") {}

    Group &root() { return _root; }
    const Group &root() const { return _root; }

    void reset() { _root.reset(); }
    void dump(std::ostream &os) const { _root.dump(os); }

  private:
    Group _root;
};

} // namespace fusion::stats

#endif // FUSION_SIM_STATS_HH
