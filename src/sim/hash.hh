/**
 * @file
 * Shared FNV-1a 64-bit hashing. Used for golden-output fingerprints:
 * the frontend-equivalence anchors and the fault-campaign triage both
 * hash serialized RunResult JSON, so they must agree on the function.
 */

#ifndef FUSION_SIM_HASH_HH
#define FUSION_SIM_HASH_HH

#include <cstdint>
#include <string_view>

namespace fusion
{

/** FNV-1a 64-bit over a byte string. */
inline std::uint64_t
fnv1a(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace fusion

#endif // FUSION_SIM_HASH_HH
