/**
 * @file
 * InlineEvent: the allocation-free callable the event queue stores.
 *
 * Since the transaction-path overhaul the implementation is the
 * generic sim::SmallFn (sim/small_fn.hh) instantiated at void() —
 * InlineEvent introduced the 64-byte inline buffer + thread-local
 * slab design for the event kernel, and SmallFn generalizes it to
 * every continuation signature in the simulator. The alias keeps the
 * event queue's vocabulary (and the kernel documentation in
 * DESIGN.md section 8) intact.
 */

#ifndef FUSION_SIM_INLINE_EVENT_HH
#define FUSION_SIM_INLINE_EVENT_HH

#include "sim/small_fn.hh"

namespace fusion
{

/** Move-only, small-buffer-optimized void() closure. */
using InlineEvent = sim::SmallFn<void()>;

} // namespace fusion

#endif // FUSION_SIM_INLINE_EVENT_HH
