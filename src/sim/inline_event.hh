/**
 * @file
 * InlineEvent: the allocation-free callable the event queue stores.
 *
 * std::function pays a heap allocation for any capture set past its
 * tiny SSO buffer (16 bytes on the common ABIs), and every event in
 * this simulator captures at least a component pointer plus a
 * continuation — so the old EventFn = std::function<void()> put an
 * allocator round-trip on the hot path of every scheduled event.
 *
 * InlineEvent is a move-only closure box with kInlineBytes of
 * in-object storage sized for the simulator's common capture sets
 * (component pointer + address + flags + a moved-in continuation).
 * Closures that fit are constructed directly in the buffer and never
 * touch the allocator. Oversized closures fall back to a per-thread
 * slab freelist of fixed-size blocks, so even the rare fat capture
 * (System's window-replay continuations) costs a pointer pop instead
 * of a malloc once the simulation reaches steady state.
 *
 * The type is deliberately *not* a general std::function replacement:
 * no copy, no target(), no allocators — exactly what a fire-once
 * event needs and nothing the hot path has to pay for.
 */

#ifndef FUSION_SIM_INLINE_EVENT_HH
#define FUSION_SIM_INLINE_EVENT_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace fusion
{

namespace detail
{

/** Block size of the oversized-closure slab (covers every capture
 *  set in the tree today; larger ones use plain new/delete). */
constexpr std::size_t kEventSlabBytes = 256;

struct EventSlabNode
{
    EventSlabNode *next;
};

/**
 * Per-thread freelist head. Each simulated system runs entirely on
 * one thread (the sweep engine gives every job its own worker), so
 * a thread-local list needs no locks; a block freed on a different
 * thread than it was allocated on simply migrates lists, which is
 * still safe.
 */
inline thread_local EventSlabNode *eventSlabFree = nullptr;

inline void *
eventSlabAlloc(std::size_t bytes)
{
    if (bytes <= kEventSlabBytes) {
        if (EventSlabNode *n = eventSlabFree) {
            eventSlabFree = n->next;
            return n;
        }
        return ::operator new(kEventSlabBytes);
    }
    return ::operator new(bytes);
}

inline void
eventSlabRelease(void *p, std::size_t bytes)
{
    if (bytes <= kEventSlabBytes) {
        auto *n = static_cast<EventSlabNode *>(p);
        n->next = eventSlabFree;
        eventSlabFree = n;
        return;
    }
    ::operator delete(p);
}

} // namespace detail

/** Move-only, small-buffer-optimized void() closure. */
class InlineEvent
{
  public:
    /** In-object closure storage. 64 bytes holds a this-pointer,
     *  a couple of scalars and one moved-in std::function (32 B on
     *  libstdc++), which covers the scheduling hot paths in
     *  system/llc/l0x/tile_mesi. */
    static constexpr std::size_t kInlineBytes = 64;

    InlineEvent() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineEvent> &&
                  std::is_invocable_v<std::decay_t<F> &>>>
    InlineEvent(F &&f) // NOLINT: implicit like std::function
    {
        emplace(std::forward<F>(f));
    }

    InlineEvent(InlineEvent &&other) noexcept : _ops(other._ops)
    {
        if (_ops) {
            relocateFrom(other);
            other._ops = nullptr;
        }
    }

    InlineEvent &
    operator=(InlineEvent &&other) noexcept
    {
        if (this != &other) {
            reset();
            _ops = other._ops;
            if (_ops) {
                relocateFrom(other);
                other._ops = nullptr;
            }
        }
        return *this;
    }

    InlineEvent(const InlineEvent &) = delete;
    InlineEvent &operator=(const InlineEvent &) = delete;

    ~InlineEvent() { reset(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    void operator()() { _ops->invoke(_buf); }

    /** Destroy the held closure (no-op when empty). */
    void
    reset() noexcept
    {
        if (_ops) {
            if (!_ops->trivialDestroy)
                _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

    /** True when the closure lives in the inline buffer (tests). */
    bool
    isInline() const noexcept
    {
        return _ops != nullptr && _ops->inlineStored;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool inlineStored;
        /** Relocation is equivalent to copying the raw buffer: true
         *  for trivially copyable inline closures (the common case —
         *  component pointer + scalars) and for the heap path (the
         *  buffer holds only the block pointer). Moves then run a
         *  fixed-size memcpy instead of an indirect call. */
        bool trivialRelocate;
        /** Destruction is a no-op (trivially destructible inline
         *  closures), so the destructor skips the indirect call. */
        bool trivialDestroy;
    };

    /** Move the closure payload of @p other (same _ops) into _buf. */
    void
    relocateFrom(InlineEvent &other) noexcept
    {
        if (_ops->trivialRelocate)
            std::memcpy(_buf, other._buf, kInlineBytes);
        else
            _ops->relocate(_buf, other._buf);
    }

    template <typename Fn>
    static constexpr bool kFitsInline =
        sizeof(Fn) <= kInlineBytes &&
        alignof(Fn) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<Fn>;

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (kFitsInline<Fn>) {
            ::new (static_cast<void *>(_buf))
                Fn(std::forward<F>(f));
            static constexpr Ops ops = {
                [](void *p) {
                    (*std::launder(reinterpret_cast<Fn *>(p)))();
                },
                [](void *dst, void *src) noexcept {
                    Fn *s = std::launder(reinterpret_cast<Fn *>(src));
                    ::new (dst) Fn(std::move(*s));
                    s->~Fn();
                },
                [](void *p) noexcept {
                    std::launder(reinterpret_cast<Fn *>(p))->~Fn();
                },
                true,
                std::is_trivially_copyable_v<Fn>,
                std::is_trivially_destructible_v<Fn>,
            };
            _ops = &ops;
        } else {
            static_assert(alignof(Fn) <= alignof(std::max_align_t),
                          "over-aligned event closures unsupported");
            void *mem = detail::eventSlabAlloc(sizeof(Fn));
            ::new (mem) Fn(std::forward<F>(f));
            *reinterpret_cast<void **>(_buf) = mem;
            static constexpr Ops ops = {
                [](void *p) {
                    (**reinterpret_cast<Fn **>(p))();
                },
                [](void *dst, void *src) noexcept {
                    *reinterpret_cast<void **>(dst) =
                        *reinterpret_cast<void **>(src);
                },
                [](void *p) noexcept {
                    Fn *fn = *reinterpret_cast<Fn **>(p);
                    fn->~Fn();
                    detail::eventSlabRelease(fn, sizeof(Fn));
                },
                false,
                true,  // buffer holds just the block pointer
                false, // block must be released
            };
            _ops = &ops;
        }
    }

    const Ops *_ops = nullptr;
    alignas(std::max_align_t) unsigned char _buf[kInlineBytes];
};

} // namespace fusion

#endif // FUSION_SIM_INLINE_EVENT_HH
