/**
 * @file
 * AX-RMAP: the accelerator tile's reverse map.
 *
 * The host tile addresses the L1X with *physical* addresses on
 * forwarded MESI requests, but the L1X is virtually indexed. Rather
 * than fattening every host control message with a virtual address,
 * FUSION spends area on a per-tile reverse map indexed by physical
 * line address that stores a pointer (way, set — here the virtual
 * line address and pid) into the shared L1X (Section 3.2). The
 * directory filters: only lines actually cached in the tile generate
 * AX-RMAP lookups, so the structure stays tiny and cold (Table 6).
 *
 * The RMAP doubles as the tile's synonym filter (Appendix): on an
 * L1X fill the controller probes the RMAP with the new line's PA and
 * evicts any duplicate cached under a different VA, keeping at most
 * one synonym resident per tile.
 */

#ifndef FUSION_VM_AX_RMAP_HH
#define FUSION_VM_AX_RMAP_HH

#include <optional>
#include <unordered_map>

#include "sim/sim_context.hh"
#include "sim/types.hh"

namespace fusion::vm
{

/** What the RMAP stores per physical line: the L1X "pointer". */
struct RmapEntry
{
    Addr vline = 0; ///< virtual line address indexing the L1X
    Pid pid = 0;
};

/** AX-RMAP parameters. */
struct AxRmapParams
{
    double lookupPj = 1.2; ///< PA-indexed probe
    Cycles latency = 1;
};

/** Physical-line-address -> L1X-pointer map. */
class AxRmap
{
  public:
    AxRmap(SimContext &ctx, const AxRmapParams &p);

    /** Track a line on L1X fill. */
    void insert(Addr pline, Addr vline, Pid pid);

    /** Drop a line on L1X eviction. */
    void erase(Addr pline);

    /**
     * Probe on a forwarded host request (books energy + stats).
     * @return the L1X pointer if the tile caches the line.
     */
    std::optional<RmapEntry> lookup(Addr pline);

    /**
     * Probe without booking a forwarded-request lookup (synonym
     * check on the tile's own fills).
     */
    std::optional<RmapEntry> probeForSynonym(Addr pline);

    std::uint64_t lookups() const { return _lookups; }
    std::size_t size() const { return _map.size(); }
    Cycles latency() const { return _p.latency; }

  private:
    SimContext &_ctx;
    AxRmapParams _p;
    std::unordered_map<Addr, RmapEntry> _map;
    std::uint64_t _lookups = 0;
    energy::ComponentId _ecRmap = energy::kInvalidComponent;
    stats::Group *_stats;
    // Per-access counters resolved once at construction.
    stats::Scalar *_stInserts;
    stats::Scalar *_stLookups;
    stats::Scalar *_stSynonymProbes;
};

} // namespace fusion::vm

#endif // FUSION_VM_AX_RMAP_HH
