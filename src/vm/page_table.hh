/**
 * @file
 * Per-process page tables.
 *
 * The accelerator tile operates on virtual addresses; physical
 * addresses exist only on the host side of the AX-TLB (Section 3.2,
 * "Virtual Memory"). This page table backs both the AX-TLB (VA->PA
 * on the L1X miss path) and the AX-RMAP construction (PA->L1X
 * pointer for forwarded requests).
 *
 * Physical pages are assigned deterministically in mapping order so
 * simulations are reproducible. Synonyms (two VAs mapping to one PA)
 * are supported via alias() for the appendix's synonym-handling
 * tests.
 */

#ifndef FUSION_VM_PAGE_TABLE_HH
#define FUSION_VM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace fusion::vm
{

/** Page size used throughout. */
constexpr std::uint32_t kPageBytes = 4096;
constexpr std::uint32_t kPageShift = 12;

/** Virtual page number of an address. */
constexpr Addr
pageNumber(Addr a)
{
    return a >> kPageShift;
}

/** Page offset of an address. */
constexpr Addr
pageOffset(Addr a)
{
    return a & (kPageBytes - 1);
}

/** Forward + reverse per-process page tables. */
class PageTable
{
  public:
    /**
     * Map the page containing @p va for @p pid (no-op if mapped).
     * @return the physical page base address.
     */
    Addr ensureMapped(Pid pid, Addr va);

    /** Map every page overlapping [va, va+bytes). */
    void ensureMappedRange(Pid pid, Addr va, std::uint64_t bytes);

    /**
     * Create a synonym: the page of @p synonym_va maps to the same
     * physical page as the already-mapped @p canonical_va.
     */
    void alias(Pid pid, Addr synonym_va, Addr canonical_va);

    /**
     * Translate. @return physical address.
     * Panics on unmapped addresses (traces pre-map everything).
     */
    Addr translate(Pid pid, Addr va) const;

    /** True if the page of @p va is mapped for @p pid. */
    bool mapped(Pid pid, Addr va) const;

    /** Number of mapped virtual pages. */
    std::size_t pageCount() const { return _map.size(); }

  private:
    struct Key
    {
        Pid pid;
        Addr vpage;
        bool operator==(const Key &o) const
        {
            return pid == o.pid && vpage == o.vpage;
        }
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            return std::hash<Addr>()(k.vpage * 1000003ull +
                                     static_cast<Addr>(k.pid));
        }
    };

    std::unordered_map<Key, Addr, KeyHash> _map; ///< vpage -> ppage
    Addr _nextPpage = 0x10; ///< first pages reserved
};

} // namespace fusion::vm

#endif // FUSION_VM_PAGE_TABLE_HH
