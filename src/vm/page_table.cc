#include "vm/page_table.hh"

#include "sim/logging.hh"

namespace fusion::vm
{

Addr
PageTable::ensureMapped(Pid pid, Addr va)
{
    Key k{pid, pageNumber(va)};
    auto it = _map.find(k);
    if (it == _map.end())
        it = _map.emplace(k, _nextPpage++).first;
    return it->second << kPageShift;
}

void
PageTable::ensureMappedRange(Pid pid, Addr va, std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    Addr first = pageNumber(va);
    Addr last = pageNumber(va + bytes - 1);
    for (Addr p = first; p <= last; ++p)
        ensureMapped(pid, p << kPageShift);
}

void
PageTable::alias(Pid pid, Addr synonym_va, Addr canonical_va)
{
    Key canon{pid, pageNumber(canonical_va)};
    auto it = _map.find(canon);
    fusion_assert(it != _map.end(),
                  "alias target not mapped: va=", canonical_va);
    _map[Key{pid, pageNumber(synonym_va)}] = it->second;
}

Addr
PageTable::translate(Pid pid, Addr va) const
{
    auto it = _map.find(Key{pid, pageNumber(va)});
    fusion_assert(it != _map.end(), "unmapped va=", va, " pid=", pid);
    return (it->second << kPageShift) | pageOffset(va);
}

bool
PageTable::mapped(Pid pid, Addr va) const
{
    return _map.count(Key{pid, pageNumber(va)}) != 0;
}

} // namespace fusion::vm
