/**
 * @file
 * AX-TLB: the accelerator tile's translation lookaside buffer.
 *
 * FUSION keeps the TLB *off* the accelerator's critical path: L0X
 * and L1X are virtually indexed, and translation happens only on the
 * shared L1X's miss path when a request transitions into the host
 * tile's physical address space (Section 3.2, Figure 3; evaluated in
 * Section 5.6 / Table 6).
 */

#ifndef FUSION_VM_AX_TLB_HH
#define FUSION_VM_AX_TLB_HH

#include <functional>
#include <list>
#include <unordered_map>

#include "sim/sim_context.hh"
#include "sim/small_fn.hh"
#include "vm/page_table.hh"

namespace fusion::vm
{

/** AX-TLB parameters. */
struct AxTlbParams
{
    std::uint32_t entries = 32;
    Cycles hitLatency = 1;
    Cycles walkLatency = 60; ///< page-table walk on a TLB miss
    double lookupPj = 0.8;   ///< small CAM lookup
};

/** Fully-associative LRU TLB with a fixed-latency walker. */
class AxTlb
{
  public:
    using Translated = sim::SmallFn<void(Addr pa)>;

    AxTlb(SimContext &ctx, const AxTlbParams &p,
          const PageTable &pt);

    /**
     * Translate (pid, va); @p done receives the physical address
     * after the hit latency or the walk latency.
     */
    void translate(Pid pid, Addr va, Translated done);

    std::uint64_t lookups() const { return _lookups; }
    std::uint64_t misses() const { return _misses; }

  private:
    struct Key
    {
        Pid pid;
        Addr vpage;
        bool operator==(const Key &o) const
        {
            return pid == o.pid && vpage == o.vpage;
        }
    };
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            return std::hash<Addr>()(k.vpage * 1000003ull +
                                     static_cast<Addr>(k.pid));
        }
    };

    void insert(const Key &k, Addr ppage_base);

    SimContext &_ctx;
    AxTlbParams _p;
    const PageTable &_pt;
    /// LRU list of keys; map holds (ppage base, list iterator).
    std::list<Key> _lru;
    std::unordered_map<Key, std::pair<Addr, std::list<Key>::iterator>,
                       KeyHash>
        _entries;
    std::uint64_t _lookups = 0;
    std::uint64_t _misses = 0;
    energy::ComponentId _ecTlb = energy::kInvalidComponent;
    stats::Group *_stats;
    // Per-access counters resolved once at construction.
    stats::Scalar *_stLookups;
    stats::Scalar *_stMisses;
};

} // namespace fusion::vm

#endif // FUSION_VM_AX_TLB_HH
