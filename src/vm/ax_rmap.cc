#include "vm/ax_rmap.hh"

#include "energy/energy_ledger.hh"
#include "sim/logging.hh"

namespace fusion::vm
{

AxRmap::AxRmap(SimContext &ctx, const AxRmapParams &p)
    : _ctx(ctx), _p(p)
{
    _stats = &ctx.stats.root().child("ax_rmap");
    _stInserts = &_stats->scalar("inserts");
    _stLookups = &_stats->scalar("lookups");
    _stSynonymProbes = &_stats->scalar("synonym_probes");
    _ecRmap = ctx.energy.component(energy::comp::kAxRmap);
}

void
AxRmap::insert(Addr pline, Addr vline, Pid pid)
{
    _map[lineAlign(pline)] = RmapEntry{lineAlign(vline), pid};
    *_stInserts += 1;
}

void
AxRmap::erase(Addr pline)
{
    _map.erase(lineAlign(pline));
}

std::optional<RmapEntry>
AxRmap::lookup(Addr pline)
{
    ++_lookups;
    *_stLookups += 1;
    _ctx.energy.add(_ecRmap, _p.lookupPj);
    auto it = _map.find(lineAlign(pline));
    if (it == _map.end())
        return std::nullopt;
    return it->second;
}

std::optional<RmapEntry>
AxRmap::probeForSynonym(Addr pline)
{
    *_stSynonymProbes += 1;
    _ctx.energy.add(_ecRmap, _p.lookupPj);
    auto it = _map.find(lineAlign(pline));
    if (it == _map.end())
        return std::nullopt;
    return it->second;
}

} // namespace fusion::vm
