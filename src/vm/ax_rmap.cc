#include "vm/ax_rmap.hh"

#include "energy/energy_ledger.hh"
#include "sim/logging.hh"

namespace fusion::vm
{

AxRmap::AxRmap(SimContext &ctx, const AxRmapParams &p)
    : _ctx(ctx), _p(p)
{
    _stats = &ctx.stats.root().child("ax_rmap");
}

void
AxRmap::insert(Addr pline, Addr vline, Pid pid)
{
    _map[lineAlign(pline)] = RmapEntry{lineAlign(vline), pid};
    _stats->scalar("inserts") += 1;
}

void
AxRmap::erase(Addr pline)
{
    _map.erase(lineAlign(pline));
}

std::optional<RmapEntry>
AxRmap::lookup(Addr pline)
{
    ++_lookups;
    _stats->scalar("lookups") += 1;
    _ctx.energy.add(energy::comp::kAxRmap, _p.lookupPj);
    auto it = _map.find(lineAlign(pline));
    if (it == _map.end())
        return std::nullopt;
    return it->second;
}

std::optional<RmapEntry>
AxRmap::probeForSynonym(Addr pline)
{
    _stats->scalar("synonym_probes") += 1;
    _ctx.energy.add(energy::comp::kAxRmap, _p.lookupPj);
    auto it = _map.find(lineAlign(pline));
    if (it == _map.end())
        return std::nullopt;
    return it->second;
}

} // namespace fusion::vm
