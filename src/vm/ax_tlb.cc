#include "vm/ax_tlb.hh"

#include "energy/energy_ledger.hh"

namespace fusion::vm
{

AxTlb::AxTlb(SimContext &ctx, const AxTlbParams &p,
             const PageTable &pt)
    : _ctx(ctx), _p(p), _pt(pt)
{
    _stats = &ctx.stats.root().child("ax_tlb");
    _stLookups = &_stats->scalar("lookups");
    _stMisses = &_stats->scalar("misses");
    _ecTlb = ctx.energy.component(energy::comp::kAxTlb);
}

void
AxTlb::translate(Pid pid, Addr va, Translated done)
{
    ++_lookups;
    *_stLookups += 1;
    _ctx.energy.add(_ecTlb, _p.lookupPj);

    Key k{pid, pageNumber(va)};
    auto it = _entries.find(k);
    if (it != _entries.end()) {
        // Refresh LRU.
        _lru.splice(_lru.begin(), _lru, it->second.second);
        Addr pa = it->second.first | pageOffset(va);
        _ctx.eq.scheduleIn(
            _p.hitLatency,
            [pa, done = std::move(done)]() mutable { done(pa); });
        return;
    }

    ++_misses;
    *_stMisses += 1;
    Addr pa = _pt.translate(pid, va);
    Addr ppage_base = pa & ~static_cast<Addr>(kPageBytes - 1);
    insert(k, ppage_base);
    _ctx.eq.scheduleIn(
        _p.walkLatency,
        [pa, done = std::move(done)]() mutable { done(pa); });
}

void
AxTlb::insert(const Key &k, Addr ppage_base)
{
    if (_entries.size() >= _p.entries) {
        const Key &victim = _lru.back();
        _entries.erase(victim);
        _lru.pop_back();
    }
    _lru.push_front(k);
    _entries.emplace(k, std::make_pair(ppage_base, _lru.begin()));
}

} // namespace fusion::vm
